// Allocation-count spot check for the query hot path (DESIGN.md §13).
//
// Replaces the global allocator with a counting shim and asserts that a
// *warm* traversal scratch executes the range-variant component-score
// kernel with zero heap allocations: after one warm-up pass has grown the
// scratch vectors to their steady-state capacity, repeating the same
// queries must not allocate at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/compute_score.h"
#include "gen/synthetic.h"
#include "index/srt_index.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator.  Only the allocation entry points count;
// deallocation stays untracked (frees are irrelevant to the invariant).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace stpq {
namespace {

// Tracing variant of the invariant: with the tracer recording into an
// already-registered ring, the warm kernel still performs zero heap
// allocations — TryEmit writes into preallocated ring slots, and a full
// ring drops events instead of growing.
TEST(AllocationTest, WarmTracedRangeTraversalAllocatesNothing) {
  SyntheticConfig cfg;
  cfg.seed = 31;
  cfg.num_objects = 32;
  cfg.num_features_per_set = 5000;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 128;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);

  Rng rng(32);
  std::vector<Point> points;
  std::vector<KeywordSet> queries;
  for (int i = 0; i < 16; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform()});
    KeywordSet kw(cfg.vocabulary_size);
    kw.Insert(static_cast<TermId>(rng.UniformInt(0, 63)));
    kw.Insert(static_cast<TermId>(rng.UniformInt(0, 63)));
    queries.push_back(std::move(kw));
  }

  QueryStats stats;
  TraversalScratch scratch;
  auto run_all = [&] {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      total += ComputeBestRange(index, points[i], queries[i], 0.5, 0.08,
                                stats, scratch)
                   .score;
    }
    return total;
  };

  Tracer::Global().Start();
  // Warm-up: grows the scratch vectors *and* registers this thread's
  // trace ring (its single allocation happens here, once per process).
  const double warm_total = run_all();

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const double steady_total = run_all();
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);

  Tracer::Global().Stop();
  Tracer::Global().Discard();

  EXPECT_EQ(after - before, 0u)
      << "warm traced range traversal performed " << (after - before)
      << " heap allocations";
  EXPECT_DOUBLE_EQ(steady_total, warm_total);
#if !defined(STPQ_DISABLE_TRACING)
  // The traced run really recorded node visits (same counters either way).
  EXPECT_GT(stats.traversal.FeatureVisited(), 0u);
#endif
}

TEST(AllocationTest, WarmScratchRangeTraversalAllocatesNothing) {
  SyntheticConfig cfg;
  cfg.seed = 31;
  cfg.num_objects = 32;
  cfg.num_features_per_set = 5000;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 128;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;  // no buffer pool: pure in-memory traversal
  SrtIndex index(&ds.feature_tables[0], opts);

  Rng rng(32);
  std::vector<Point> points;
  std::vector<KeywordSet> queries;
  for (int i = 0; i < 16; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform()});
    KeywordSet kw(cfg.vocabulary_size);
    kw.Insert(static_cast<TermId>(rng.UniformInt(0, 63)));
    kw.Insert(static_cast<TermId>(rng.UniformInt(0, 63)));
    queries.push_back(std::move(kw));
  }

  QueryStats stats;
  TraversalScratch scratch;
  auto run_all = [&] {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      total += ComputeBestRange(index, points[i], queries[i], 0.5, 0.08,
                                stats, scratch)
                   .score;
    }
    return total;
  };

  // Warm-up: grows scratch.heap / scratch.branches to steady state.
  const double warm_total = run_all();

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const double steady_total = run_all();
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "warm range traversal performed " << (after - before)
      << " heap allocations";
  EXPECT_DOUBLE_EQ(steady_total, warm_total);
}

}  // namespace
}  // namespace stpq
