// Tests for src/obs/: phase tracing, latency histograms, the metrics
// registry with Prometheus exposition, and the engine's metric feeding —
// including QueryStats merging under the parallel workload runner.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/phase.h"
#include "obs/query_metrics.h"
#include "obs/timeseries.h"

namespace stpq {
namespace {

// -------------------------------------------------------------- PhaseTimer

/// Burns a little CPU so a span has measurable (nonzero-ish) duration
/// without sleeping; returns a value to keep the loop alive.
double Spin(int iters) {
  volatile double x = 1.0;
  for (int i = 0; i < iters * 1000; ++i) x = x + 1.0 / (x + 1.0);
  return x;
}

TEST(PhaseTimerTest, AttributesToNamedPhase) {
  QueryStats stats;
  {
    PhaseTimer t(stats, QueryPhase::kCombination);
    Spin(10);
  }
  EXPECT_GT(stats.PhaseMillis(QueryPhase::kCombination), 0.0);
  EXPECT_EQ(stats.PhaseMillis(QueryPhase::kComponentScore), 0.0);
  EXPECT_EQ(stats.PhaseMillis(QueryPhase::kObjectRetrieval), 0.0);
  EXPECT_EQ(stats.PhaseMillis(QueryPhase::kVoronoi), 0.0);
}

TEST(PhaseTimerTest, NestedSpansAttributeSelfTimeOnly) {
  QueryStats stats;
  const auto wall_start = std::chrono::steady_clock::now();
  {
    PhaseTimer outer(stats, QueryPhase::kObjectRetrieval);
    Spin(2);
    {
      PhaseTimer inner(stats, QueryPhase::kComponentScore);
      Spin(50);  // much more work than the outer span's own
    }
    Spin(2);
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  const double outer_ms = stats.PhaseMillis(QueryPhase::kObjectRetrieval);
  const double inner_ms = stats.PhaseMillis(QueryPhase::kComponentScore);
  EXPECT_GT(outer_ms, 0.0);
  EXPECT_GT(inner_ms, 0.0);
  // Self-time: the outer span excludes the inner span's elapsed time.  The
  // inner span spins 25x more than the outer does, so if the outer span
  // double-counted the nested time it would dominate instead.
  EXPECT_LT(outer_ms, inner_ms);
  // The self-times partition the outer span's elapsed wall time, so their
  // sum can never exceed the enclosing wall-clock measurement.
  EXPECT_LE(stats.TracedMillis(), wall_ms + 1e-6);
}

TEST(PhaseTimerTest, ReentrantSamePhaseAccumulates) {
  QueryStats stats;
  for (int i = 0; i < 3; ++i) {
    PhaseTimer t(stats, QueryPhase::kCombination);
    Spin(2);
  }
  EXPECT_GT(stats.PhaseMillis(QueryPhase::kCombination), 0.0);
}

TEST(PhaseTimerTest, MacroCompilesAndRecords) {
  QueryStats stats;
  {
    STPQ_TRACE_PHASE(stats, QueryPhase::kVoronoi);
    Spin(5);
  }
  EXPECT_GT(stats.PhaseMillis(QueryPhase::kVoronoi), 0.0);
}

TEST(PhaseTimerTest, NestedTimersMayTargetDifferentStats) {
  // A cursor drained inside another query's span writes to its own stats;
  // the parent still excludes the nested time from its self-time.
  QueryStats parent_stats, child_stats;
  {
    PhaseTimer parent(parent_stats, QueryPhase::kCombination);
    {
      PhaseTimer child(child_stats, QueryPhase::kObjectRetrieval);
      Spin(10);
    }
  }
  EXPECT_GT(child_stats.PhaseMillis(QueryPhase::kObjectRetrieval), 0.0);
  EXPECT_EQ(child_stats.PhaseMillis(QueryPhase::kCombination), 0.0);
  // The parent's self time is tiny compared to the child's span.
  EXPECT_LT(parent_stats.PhaseMillis(QueryPhase::kCombination),
            child_stats.PhaseMillis(QueryPhase::kObjectRetrieval));
}

TEST(PhaseTimerTest, UntracedMillisCoversCrossStatsNesting) {
  // A nested span that writes to a *different* stats object (cursor inside
  // a query) is invisible to the parent's phase breakdown: its time shows
  // up as the parent's untraced remainder, never as negative slack.
  QueryStats parent_stats, child_stats;
  const auto wall_start = std::chrono::steady_clock::now();
  {
    PhaseTimer parent(parent_stats, QueryPhase::kCombination);
    Spin(2);
    {
      PhaseTimer child(child_stats, QueryPhase::kObjectRetrieval);
      Spin(50);
    }
    Spin(2);
  }
  parent_stats.cpu_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  const double child_ms =
      child_stats.PhaseMillis(QueryPhase::kObjectRetrieval);
  EXPECT_GT(child_ms, 0.0);
  // The child's work dominates the wall time but is untraced from the
  // parent's perspective (loose factor: scheduling noise).
  EXPECT_GE(parent_stats.UntracedMillis(), child_ms * 0.5);
  EXPECT_LE(parent_stats.TracedMillis(), parent_stats.cpu_ms + 1e-6);
}

TEST(QueryStatsTest, UntracedMillisClampsAtZero) {
  QueryStats s;
  s.phase_ms[static_cast<size_t>(QueryPhase::kCombination)] = 5.0;
  EXPECT_DOUBLE_EQ(s.TracedMillis(), 5.0);
  // Timer resolution can push traced past cpu_ms; the remainder clamps.
  s.cpu_ms = 1.0;
  EXPECT_DOUBLE_EQ(s.UntracedMillis(), 0.0);
  s.cpu_ms = 8.0;
  EXPECT_DOUBLE_EQ(s.UntracedMillis(), 3.0);
}

// ---------------------------------------------------------- LatencyBuckets

TEST(LatencyBucketsTest, BoundsGrowMonotonically) {
  for (size_t i = 0; i + 2 < LatencyBuckets::kNumBuckets; ++i) {
    EXPECT_LT(LatencyBuckets::UpperBoundMs(i),
              LatencyBuckets::UpperBoundMs(i + 1))
        << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(LatencyBuckets::UpperBoundMs(0),
                   LatencyBuckets::kMinUpperMs);
  EXPECT_TRUE(
      std::isinf(LatencyBuckets::UpperBoundMs(LatencyBuckets::kNumBuckets - 1)));
}

TEST(LatencyBucketsTest, IndexForMatchesBounds) {
  EXPECT_EQ(LatencyBuckets::IndexFor(0.0), 0u);
  EXPECT_EQ(LatencyBuckets::IndexFor(-1.0), 0u);
  for (size_t i = 0; i + 1 < LatencyBuckets::kNumBuckets; ++i) {
    const double bound = LatencyBuckets::UpperBoundMs(i);
    // A value just under the bound lands in bucket i; just over in i+1.
    EXPECT_EQ(LatencyBuckets::IndexFor(bound * 0.999), i) << "bucket " << i;
    EXPECT_EQ(LatencyBuckets::IndexFor(bound * 1.001), i + 1)
        << "bucket " << i;
  }
  // Far past the largest finite bound: the overflow bucket absorbs it.
  EXPECT_EQ(LatencyBuckets::IndexFor(1e18),
            LatencyBuckets::kNumBuckets - 1);
}

// -------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
  EXPECT_EQ(h.mean_ms(), 0.0);
  EXPECT_EQ(h.PercentileMs(0.5), 0.0);
}

TEST(LatencyHistogramTest, RecordsAndSummarizes) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));  // 1..100ms
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 5050.0);
  EXPECT_DOUBLE_EQ(h.max_ms(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 50.5);
  // Log-scale buckets are ~41% wide, so percentiles are coarse but must be
  // ordered, within a bucket of the true value, and capped at the max.
  const double p50 = h.PercentileMs(0.50);
  const double p90 = h.PercentileMs(0.90);
  const double p99 = h.PercentileMs(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max_ms());
  EXPECT_GT(p50, 50.0 * 0.5);
  EXPECT_LT(p50, 50.0 * 1.5);
  EXPECT_GT(p99, 99.0 * 0.5);
  EXPECT_EQ(h.PercentileMs(1.0), h.max_ms());
  EXPECT_NE(h.SummaryString().find("p50="), std::string::npos);
  EXPECT_NE(h.SummaryString().find("p99="), std::string::npos);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double va = 0.01 * (i + 1);
    const double vb = 3.0 * (i + 1);
    a.Record(va);
    b.Record(vb);
    combined.Record(va);
    combined.Record(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum_ms(), combined.sum_ms());
  EXPECT_DOUBLE_EQ(a.max_ms(), combined.max_ms());
  for (size_t i = 0; i < LatencyBuckets::kNumBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), combined.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(a.PercentileMs(0.5), combined.PercentileMs(0.5));
}

// --------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test_total", "help");
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same instrument.
  EXPECT_EQ(&reg.GetCounter("test_total", "help"), &c);

  Gauge& g = reg.GetGauge("test_gauge", "help");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  HistogramMetric& h = reg.GetHistogram("test_ms", "help");
  h.Record(1.0);
  h.Record(10.0);
  LatencyHistogram snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 2u);
  // Snapshot replays each bucket at its upper bound, so the sum is only
  // bucket-accurate (each sample overstated by at most 41%).
  EXPECT_GE(snap.sum_ms(), 11.0);
  EXPECT_LE(snap.sum_ms(), 11.0 * 1.45);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("race_total", "help");
  HistogramMetric& h = reg.GetHistogram("race_ms", "help");
  constexpr int kThreads = 8, kPerThread = 10'000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Record(1.0);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Snapshot().count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.GetCounter("stpq_test_total", "A test counter").Increment(7);
  reg.GetGauge("stpq_test_gauge", "A test gauge").Set(3.5);
  HistogramMetric& h = reg.GetHistogram("stpq_test_ms", "A test histogram");
  h.Record(0.5);
  h.Record(5.0);
  const std::string text = reg.RenderPrometheusText();

  EXPECT_NE(text.find("# HELP stpq_test_total A test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE stpq_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("stpq_test_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stpq_test_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("stpq_test_gauge 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stpq_test_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("stpq_test_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("stpq_test_ms_count 2"), std::string::npos);
  EXPECT_NE(text.find("stpq_test_ms_sum"), std::string::npos);

  // Cumulative bucket counts must be non-decreasing in le order.
  size_t pos = 0;
  uint64_t prev = 0;
  int buckets_seen = 0;
  while ((pos = text.find("stpq_test_ms_bucket{le=", pos)) !=
         std::string::npos) {
    size_t brace = text.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    uint64_t count = std::stoull(text.substr(brace + 2));
    EXPECT_GE(count, prev);
    prev = count;
    ++buckets_seen;
    pos = brace;
  }
  EXPECT_EQ(buckets_seen,
            static_cast<int>(LatencyBuckets::kNumBuckets));  // incl. +Inf
  EXPECT_EQ(prev, 2u);  // the +Inf bucket equals _count
}

TEST(MetricsRegistryTest, PrometheusHelpEscapesBackslashAndNewline) {
  MetricsRegistry reg;
  reg.GetCounter("stpq_escape_total", "line one\nback\\slash").Increment();
  const std::string text = reg.RenderPrometheusText();
  // Text format 0.0.4: '\\' -> '\\\\' and a raw newline -> the two
  // characters '\\n', so every HELP line stays a single line.
  EXPECT_NE(text.find("# HELP stpq_escape_total line one\\nback\\\\slash"),
            std::string::npos);
}

TEST(MetricsRegistryTest, ExpositionEverySampleHasHelpAndType) {
  MetricsRegistry reg;
  reg.GetCounter("stpq_conf_total", "counter help").Increment(3);
  reg.GetGauge("stpq_conf_gauge", "gauge help").Set(1.0);
  reg.GetHistogram("stpq_conf_ms", "histogram help").Record(2.0);
  const std::string text = reg.RenderPrometheusText();
  ASSERT_FALSE(text.empty());
  // The exposition must end with a newline (text format requirement).
  EXPECT_EQ(text.back(), '\n');

  // Every sample line's metric family must have been announced by a
  // "# HELP" and a "# TYPE" line earlier in the stream.
  std::set<std::string> helped, typed;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      helped.insert(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      typed.insert(line.substr(7, line.find(' ', 7) - 7));
      continue;
    }
    ASSERT_NE(line.front(), '#') << line;
    std::string name = line.substr(0, line.find_first_of("{ "));
    // Histogram samples belong to the family without the suffix.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0 &&
          typed.count(name.substr(0, name.size() - len)) > 0) {
        name = name.substr(0, name.size() - len);
        break;
      }
    }
    EXPECT_EQ(helped.count(name), 1u) << "sample without HELP: " << line;
    EXPECT_EQ(typed.count(name), 1u) << "sample without TYPE: " << line;
  }
}

TEST(MetricsRegistryTest, ResetForTestKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("reset_total", "help");
  c.Increment(5);
  reg.ResetForTest();
  EXPECT_EQ(c.value(), 0u);
  c.Increment();  // the old handle still points at the live instrument
  EXPECT_EQ(reg.GetCounter("reset_total", "help").value(), 1u);
}

// ------------------------------------------------------------ QueryMetrics

TEST(QueryMetricsTest, RecordQueryFoldsCounters) {
  MetricsRegistry reg;
  QueryMetrics qm(reg);
  QueryStats stats;
  stats.object_index_reads = 3;
  stats.feature_index_reads = 4;
  stats.buffer_hits = 5;
  stats.heap_pushes = 6;
  stats.objects_scored = 7;
  stats.cpu_ms = 1.25;
  stats.phase_ms[static_cast<size_t>(QueryPhase::kCombination)] = 2.0;
  qm.RecordQuery(stats);
  qm.RecordQuery(stats);
  qm.RecordRejected();
  EXPECT_EQ(qm.queries_total.value(), 2u);
  EXPECT_EQ(qm.rejected_total.value(), 1u);
  EXPECT_EQ(qm.pages_read_total.value(), 14u);
  EXPECT_EQ(qm.buffer_hits_total.value(), 10u);
  EXPECT_EQ(qm.heap_pushes_total.value(), 12u);
  EXPECT_EQ(qm.objects_scored_total.value(), 14u);
  EXPECT_EQ(qm.query_cpu_ms.Snapshot().count(), 2u);
  EXPECT_EQ(
      qm.phase_us_total[static_cast<size_t>(QueryPhase::kCombination)]
          ->value(),
      4000u);
}

TEST(QueryMetricsTest, RecordQueryFoldsTraversalCounters) {
  MetricsRegistry reg;
  QueryMetrics qm(reg);
  QueryStats stats;
  stats.traversal.object_tree.RecordVisit(/*level=*/0, /*pruned_n=*/2,
                                          /*descended_n=*/3);
  stats.traversal.object_tree.RecordVisit(1, 4, 5);
  stats.traversal.FeatureTree(0).RecordVisit(0, 6, 7);
  stats.traversal.FeatureTree(1).RecordVisit(2, 8, 9);
  qm.RecordQuery(stats);
  EXPECT_EQ(qm.object_tree_nodes_visited_total.value(), 2u);
  EXPECT_EQ(qm.object_tree_entries_pruned_total.value(), 6u);
  EXPECT_EQ(qm.object_tree_entries_descended_total.value(), 8u);
  EXPECT_EQ(qm.feature_tree_nodes_visited_total.value(), 2u);
  EXPECT_EQ(qm.feature_tree_entries_pruned_total.value(), 14u);
  EXPECT_EQ(qm.feature_tree_entries_descended_total.value(), 16u);
  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("stpq_object_tree_nodes_visited_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("stpq_feature_tree_entries_pruned_total 14"),
            std::string::npos);
}

// --------------------------------------------- engine + workload wiring

Dataset SmallDataset() {
  SyntheticConfig cfg;
  cfg.num_objects = 400;
  cfg.num_features_per_set = 400;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 40;
  cfg.seed = 11;
  return GenerateSynthetic(cfg);
}

TEST(EngineObservabilityTest, ExecuteFillsPhaseBreakdown) {
  Dataset ds = SmallDataset();
  QueryWorkloadConfig qcfg;
  qcfg.count = 5;
  qcfg.k = 5;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    Result<QueryResult> r = engine.Execute(q, Algorithm::kStps);
    ASSERT_TRUE(r.ok());
    const QueryStats& stats = r.value().stats;
    // Phase self-times never exceed the query's total CPU time.
    EXPECT_LE(stats.TracedMillis(), stats.cpu_ms + 0.5);
    EXPECT_GE(stats.UntracedMillis(), 0.0);
    // STPS range queries run combination enumeration; its phase (or the
    // nested component-score phase) must have been traced.
    EXPECT_GT(stats.PhaseMillis(QueryPhase::kCombination) +
                  stats.PhaseMillis(QueryPhase::kComponentScore),
              0.0);
    EXPECT_EQ(stats.PhaseMillis(QueryPhase::kVoronoi), 0.0);
  }
}

TEST(EngineObservabilityTest, GlobalRegistryAdvancesPerQuery) {
  Dataset ds = SmallDataset();
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.k = 5;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();
  const uint64_t before = QueryMetrics::Global().queries_total.value();
  const uint64_t rejected_before =
      QueryMetrics::Global().rejected_total.value();
  for (const Query& q : queries) {
    ASSERT_TRUE(engine.Execute(q, Algorithm::kStps).ok());
  }
  Query bad = queries[0];
  bad.k = 0;
  EXPECT_FALSE(engine.Execute(bad, Algorithm::kStps).ok());
  EXPECT_EQ(QueryMetrics::Global().queries_total.value(), before + 3);
  EXPECT_EQ(QueryMetrics::Global().rejected_total.value(),
            rejected_before + 1);
  const std::string text =
      MetricsRegistry::Global().RenderPrometheusText();
  EXPECT_NE(text.find("stpq_queries_total"), std::string::npos);
  EXPECT_NE(text.find("stpq_query_cpu_ms_bucket"), std::string::npos);
}

TEST(ParallelWorkloadTest, MergedStatsEqualSumOfPerQueryStats) {
  Dataset ds = SmallDataset();
  QueryWorkloadConfig qcfg;
  qcfg.count = 32;
  qcfg.k = 5;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), {}).TakeValue();
  ParallelWorkloadRunner runner(&engine);
  ParallelWorkloadOptions opts;
  opts.threads = 4;
  opts.io_unit_cost_ms = 0.1;
  Result<ParallelWorkloadReport> report = runner.Run(queries, opts);
  ASSERT_TRUE(report.ok());
  const ParallelWorkloadReport& r = report.value();

  // The sink-merged aggregate must equal the field-wise sum of the
  // per-query stats: operator+= under concurrent merging loses nothing.
  QueryStats manual;
  for (const QueryResult& q : r.per_query) manual += q.stats;
  const QueryStats& merged = r.summary.aggregate;
  EXPECT_EQ(merged.object_index_reads, manual.object_index_reads);
  EXPECT_EQ(merged.feature_index_reads, manual.feature_index_reads);
  EXPECT_EQ(merged.buffer_hits, manual.buffer_hits);
  EXPECT_EQ(merged.heap_pushes, manual.heap_pushes);
  EXPECT_EQ(merged.features_retrieved, manual.features_retrieved);
  EXPECT_EQ(merged.combinations_generated, manual.combinations_generated);
  EXPECT_EQ(merged.combinations_emitted, manual.combinations_emitted);
  EXPECT_EQ(merged.objects_scored, manual.objects_scored);
  EXPECT_EQ(merged.voronoi_cells, manual.voronoi_cells);
  EXPECT_EQ(merged.voronoi_cache_hits, manual.voronoi_cache_hits);
  // Doubles sum in scheduling order in the sink; compare with tolerance.
  EXPECT_NEAR(merged.cpu_ms, manual.cpu_ms, 1e-6);
  for (size_t i = 0; i < kNumQueryPhases; ++i) {
    EXPECT_NEAR(merged.phase_ms[i], manual.phase_ms[i], 1e-6) << i;
  }

  // Per-thread histograms merged after the join: one sample per query.
  EXPECT_EQ(r.latency.count(), queries.size());
  EXPECT_GT(r.latency.max_ms(), 0.0);
  EXPECT_LE(r.latency.PercentileMs(0.50), r.latency.PercentileMs(0.99));
  // p90/p99 summary fields are populated and ordered.
  EXPECT_LE(r.summary.total_ms.p50, r.summary.total_ms.p90);
  EXPECT_LE(r.summary.total_ms.p90, r.summary.total_ms.p95);
  EXPECT_LE(r.summary.total_ms.p95, r.summary.total_ms.p99);
  EXPECT_LE(r.summary.total_ms.p99, r.summary.total_ms.max);
}

// ------------------------------------------------------- interval deltas

TEST(SaturatingCounterDeltaTest, SubtractsAndSaturates) {
  EXPECT_EQ(SaturatingCounterDelta(10, 3), 7u);
  EXPECT_EQ(SaturatingCounterDelta(5, 5), 0u);
  // Reversed operands (counter reset between snapshots) saturate to 0
  // instead of wrapping to ~2^64.
  EXPECT_EQ(SaturatingCounterDelta(3, 10), 0u);
  EXPECT_EQ(SaturatingCounterDelta(0, UINT64_MAX), 0u);
}

TEST(LatencyHistogramDeltaTest, IsolatesTheSecondPhase) {
  LatencyHistogram h;
  h.Record(1.0);
  h.Record(2.0);
  const LatencyHistogram before = h;  // snapshot after phase A
  h.Record(100.0);
  h.Record(200.0);
  h.Record(300.0);

  const LatencyHistogram delta = h.Delta(before);
  EXPECT_EQ(delta.count(), 3u);
  EXPECT_NEAR(delta.sum_ms(), 600.0, 1e-9);
  // Phase A's fast samples are gone: the delta's median sits in phase B.
  EXPECT_GT(delta.PercentileMs(0.50), 50.0);
  // Bucket-sum == count invariant holds on the delta.
  uint64_t bucket_sum = 0;
  for (size_t i = 0; i < LatencyBuckets::kNumBuckets; ++i) {
    bucket_sum += delta.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, delta.count());
}

TEST(LatencyHistogramDeltaTest, EmptyDeltaIsAllZero) {
  LatencyHistogram h;
  h.Record(5.0);
  const LatencyHistogram delta = h.Delta(h);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_EQ(delta.sum_ms(), 0.0);
  EXPECT_EQ(delta.max_ms(), 0.0);
  EXPECT_EQ(delta.PercentileMs(0.99), 0.0);
}

TEST(LatencyHistogramDeltaTest, MaxCarriesNewerUpperBound) {
  LatencyHistogram before;
  before.Record(10.0);
  LatencyHistogram after = before;
  after.Record(3.0);
  const LatencyHistogram delta = after.Delta(before);
  EXPECT_EQ(delta.count(), 1u);
  // The delta's true max (3.0) is unknowable from two maxima; the newer
  // snapshot's max is the documented upper bound.
  EXPECT_EQ(delta.max_ms(), 10.0);
}

TEST(MetricsSnapshotTest, CopiesEveryInstrumentKind) {
  MetricsRegistry reg;
  reg.GetCounter("c", "help").Increment(42);
  reg.GetGauge("g", "help").Set(2.5);
  reg.GetHistogram("h", "help").Record(7.0);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.count("c"), 1u);
  EXPECT_EQ(snap.counters.at("c"), 42u);
  ASSERT_EQ(snap.gauges.count("g"), 1u);
  EXPECT_EQ(snap.gauges.at("g"), 2.5);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count(), 1u);

  // The snapshot is a copy: later updates don't retroactively change it.
  reg.GetCounter("c", "help").Increment();
  EXPECT_EQ(snap.counters.at("c"), 42u);
}

TEST(MetricsRecorderTest, ManualSamplesCaptureIntervalDeltas) {
  MetricsRegistry reg;
  Counter& queries = reg.GetCounter("stpq_queries_total", "help");
  Counter& hits = reg.GetCounter("stpq_buffer_hits_total", "help");
  Counter& reads = reg.GetCounter("stpq_pages_read_total", "help");
  HistogramMetric& lat = reg.GetHistogram("stpq_query_cpu_ms", "help");

  MetricsRecorderOptions opts;
  opts.interval_ms = 60'000;  // the background thread never fires in-test
  opts.registry = &reg;
  MetricsRecorder recorder(opts);

  queries.Increment(5);  // pre-Start activity must not leak into interval 1
  recorder.Start();

  queries.Increment(10);
  hits.Increment(30);
  reads.Increment(10);
  lat.Record(1.0);
  lat.Record(2.0);
  recorder.SampleNow();

  queries.Increment(3);
  recorder.SampleNow();
  recorder.Stop();

  // Two manual samples plus Stop's final flush (an empty interval).
  const std::vector<IntervalSample> samples = recorder.Recent();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].CounterDelta("stpq_queries_total"), 10u);
  EXPECT_NEAR(samples[0].PoolHitRate(), 0.75, 1e-9);
  const LatencyHistogram* h = samples[0].Histogram("stpq_query_cpu_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  // HistogramMetric::Snapshot replays samples at bucket upper bounds, so
  // the delta's sum is exact only to within the <= 41% bucket width.
  EXPECT_GE(h->sum_ms(), 3.0);
  EXPECT_LE(h->sum_ms(), 3.0 * 1.45);

  EXPECT_EQ(samples[1].CounterDelta("stpq_queries_total"), 3u);
  EXPECT_EQ(samples[1].Histogram("stpq_query_cpu_ms")->count(), 0u);
  EXPECT_EQ(samples[2].CounterDelta("stpq_queries_total"), 0u);

  // Interval edges are monotone and QPS derives from the delta.
  EXPECT_LE(samples[0].start_ms, samples[0].end_ms);
  EXPECT_LE(samples[0].end_ms, samples[1].end_ms);
  if (samples[0].seconds() > 0.0) {
    EXPECT_GT(samples[0].QueriesPerSec(), 0.0);
  }
}

TEST(MetricsRecorderTest, RingDropsOldestBeyondCapacity) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c", "help");
  MetricsRecorderOptions opts;
  opts.interval_ms = 60'000;
  opts.capacity = 4;
  opts.registry = &reg;
  MetricsRecorder recorder(opts);
  recorder.Start();
  for (uint64_t i = 1; i <= 10; ++i) {
    c.Increment(i);
    recorder.SampleNow();
  }
  EXPECT_EQ(recorder.sample_count(), 4u);
  // The survivors are the most recent intervals (deltas 7..10).
  const std::vector<IntervalSample> samples = recorder.Recent();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().CounterDelta("c"), 7u);
  EXPECT_EQ(samples.back().CounterDelta("c"), 10u);
  recorder.Stop();
}

TEST(MetricsRecorderTest, RecentWindowTrimsToTrailingSeconds) {
  MetricsRegistry reg;
  MetricsRecorderOptions opts;
  opts.interval_ms = 60'000;
  opts.registry = &reg;
  MetricsRecorder recorder(opts);
  recorder.Start();
  recorder.SampleNow();
  recorder.SampleNow();
  // All samples closed within microseconds: a generous window keeps all,
  // window 0 means "everything".
  EXPECT_EQ(recorder.Recent(3600.0).size(), 2u);
  EXPECT_EQ(recorder.Recent(0.0).size(), 2u);
  recorder.Stop();
}

TEST(MetricsRecorderTest, BackgroundSamplerProducesSamples) {
  MetricsRegistry reg;
  MetricsRecorderOptions opts;
  opts.interval_ms = 5;
  opts.registry = &reg;
  MetricsRecorder recorder(opts);
  recorder.Start();
  EXPECT_TRUE(recorder.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  recorder.Stop();
  EXPECT_FALSE(recorder.running());
  EXPECT_GE(recorder.sample_count(), 2u);
  // Stop() is idempotent and Start/Stop cycles are safe.
  recorder.Stop();
}

}  // namespace
}  // namespace stpq
