// Tests for geom/: points, rectangles, convex polygon clipping.
#include <gtest/gtest.h>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "util/rng.h"

namespace stpq {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(RectTest, EmptyAndEnlarge) {
  Rect2 r = Rect2::Empty();
  EXPECT_TRUE(r.IsEmpty());
  r.EnlargePoint({0.5, 0.5});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  r.EnlargePoint({0.7, 0.2});
  EXPECT_DOUBLE_EQ(r.lo[1], 0.2);
  EXPECT_DOUBLE_EQ(r.hi[0], 0.7);
}

TEST(RectTest, ContainsAndIntersects) {
  Rect2 a = MakeRect2(0, 0, 1, 1);
  Rect2 b = MakeRect2(0.5, 0.5, 1.5, 1.5);
  Rect2 c = MakeRect2(2, 2, 3, 3);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsRect(MakeRect2(0.2, 0.2, 0.8, 0.8)));
  EXPECT_FALSE(a.ContainsRect(b));
  // Touching edges count as intersecting.
  EXPECT_TRUE(a.Intersects(MakeRect2(1, 0, 2, 1)));
}

TEST(RectTest, AreaMarginEnlargement) {
  Rect2 a = MakeRect2(0, 0, 2, 3);
  EXPECT_DOUBLE_EQ(a.Area(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  Rect2 b = MakeRect2(3, 0, 4, 1);
  EXPECT_DOUBLE_EQ(a.EnlargementArea(b), 4.0 * 3.0 - 6.0);
}

TEST(RectTest, MinDistancePointInside) {
  Rect2 r = MakeRect2(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(MinDistance(Point{0.5, 0.5}, r), 0.0);
}

TEST(RectTest, MinDistancePointOutside) {
  Rect2 r = MakeRect2(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(MinDistance(Point{2.0, 1.0}, r), 1.0);
  EXPECT_DOUBLE_EQ(MinDistance(Point{2.0, 2.0}, r), std::sqrt(2.0));
}

TEST(RectTest, MaxDistanceBoundsAllInterior) {
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    Rect2 r = MakeRect2(rng.Uniform(), rng.Uniform(), rng.Uniform(),
                        rng.Uniform());
    Point p{rng.Uniform(-1, 2), rng.Uniform(-1, 2)};
    double maxd = MaxDistance(p, r);
    double mind = MinDistance(p, r);
    EXPECT_LE(mind, maxd);
    for (int s = 0; s < 20; ++s) {
      Point q{rng.Uniform(r.lo[0], r.hi[0]), rng.Uniform(r.lo[1], r.hi[1])};
      double d = Distance(p, q);
      EXPECT_LE(d, maxd + 1e-12);
      EXPECT_GE(d, mind - 1e-12);
    }
  }
}

TEST(RectTest, RectRectMinDistance) {
  Rect2 a = MakeRect2(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(MinDistance(a, MakeRect2(0.5, 0.5, 2, 2)), 0.0);
  EXPECT_DOUBLE_EQ(MinDistance(a, MakeRect2(2, 0, 3, 1)), 1.0);
  EXPECT_DOUBLE_EQ(MinDistance(a, MakeRect2(2, 2, 3, 3)), std::sqrt(2.0));
}

TEST(Rect4Test, FourDimensionalOps) {
  Rect4 r = Rect4::Empty();
  r.EnlargePoint({0.1, 0.2, 0.3, 0.4});
  r.EnlargePoint({0.5, 0.1, 0.6, 0.2});
  EXPECT_TRUE(r.Contains({0.3, 0.15, 0.4, 0.3}));
  EXPECT_FALSE(r.Contains({0.3, 0.15, 0.4, 0.5}));
  EXPECT_DOUBLE_EQ(r.Center(0), 0.3);
}

TEST(HalfPlaneTest, BisectorKeepsCloserSide) {
  Point a{0, 0}, b{2, 0};
  HalfPlane hp = BisectorHalfPlane(a, b);
  EXPECT_TRUE(hp.Contains({0.5, 0.7}));   // closer to a
  EXPECT_FALSE(hp.Contains({1.5, 0.7}));  // closer to b
  EXPECT_TRUE(hp.Contains({1.0, 5.0}));   // equidistant: boundary inclusive
}

TEST(PolygonTest, FromRectIsCcwSquare) {
  ConvexPolygon p = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
  EXPECT_FALSE(p.IsEmpty());
  EXPECT_EQ(p.vertices().size(), 4u);
  EXPECT_DOUBLE_EQ(p.Area(), 1.0);
  EXPECT_TRUE(p.Contains({0.5, 0.5}));
  EXPECT_TRUE(p.Contains({0.0, 0.0}));  // boundary inclusive
  EXPECT_FALSE(p.Contains({1.5, 0.5}));
}

TEST(PolygonTest, ClipHalvesSquare) {
  ConvexPolygon p = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
  // Keep x <= 0.5.
  p.Clip(HalfPlane{1, 0, 0.5});
  EXPECT_NEAR(p.Area(), 0.5, 1e-12);
  EXPECT_TRUE(p.Contains({0.25, 0.5}));
  EXPECT_FALSE(p.Contains({0.75, 0.5}));
}

TEST(PolygonTest, ClipToEmpty) {
  ConvexPolygon p = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
  p.Clip(HalfPlane{1, 0, -1.0});  // x <= -1: nothing survives
  EXPECT_TRUE(p.IsEmpty());
  EXPECT_DOUBLE_EQ(p.Area(), 0.0);
  // Clipping an empty polygon stays empty.
  p.Clip(HalfPlane{0, 1, 10});
  EXPECT_TRUE(p.IsEmpty());
}

TEST(PolygonTest, DiagonalClipKeepsTriangle) {
  ConvexPolygon p = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
  // Keep x + y <= 1 (lower-left triangle).
  p.Clip(HalfPlane{1, 1, 1});
  EXPECT_NEAR(p.Area(), 0.5, 1e-12);
  EXPECT_TRUE(p.Contains({0.2, 0.2}));
  EXPECT_FALSE(p.Contains({0.9, 0.9}));
}

TEST(PolygonTest, RepeatedClipsMatchVoronoiCell) {
  // Cell of the origin-centered site among a 3x3 grid of sites is the
  // center square of side 1/3 (sites at spacing 1/3).
  ConvexPolygon cell = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
  Point center{0.5, 0.5};
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      if (dx == 0 && dy == 0) continue;
      Point other{0.5 + dx / 3.0, 0.5 + dy / 3.0};
      cell.Clip(BisectorHalfPlane(center, other));
    }
  }
  EXPECT_NEAR(cell.Area(), 1.0 / 9.0, 1e-9);
  EXPECT_TRUE(cell.Contains(center));
  EXPECT_FALSE(cell.Contains({0.5 + 0.25, 0.5}));
}

TEST(PolygonTest, BoundingBoxAndMaxDistance) {
  ConvexPolygon p = ConvexPolygon::FromRect(MakeRect2(0.25, 0.25, 0.75, 0.5));
  Rect2 bb = p.BoundingBox();
  EXPECT_DOUBLE_EQ(bb.lo[0], 0.25);
  EXPECT_DOUBLE_EQ(bb.hi[1], 0.5);
  // Farthest vertex from (0.25, 0.25) is (0.75, 0.5).
  EXPECT_NEAR(p.MaxDistanceFrom({0.25, 0.25}),
              std::sqrt(0.25 + 0.0625), 1e-12);
}

TEST(PolygonTest, ClipPreservesContainmentSemantics) {
  // Property: after clipping by a random half-plane, contained points are
  // exactly those inside both the original polygon and the half-plane.
  Rng rng(17);
  for (int iter = 0; iter < 50; ++iter) {
    ConvexPolygon p = ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1));
    Point keep{rng.Uniform(), rng.Uniform()};
    Point other{rng.Uniform(), rng.Uniform()};
    if (keep == other) continue;
    HalfPlane hp = BisectorHalfPlane(keep, other);
    ConvexPolygon clipped = p;
    clipped.Clip(hp);
    for (int s = 0; s < 30; ++s) {
      Point q{rng.Uniform(), rng.Uniform()};
      bool expectation = p.Contains(q) && hp.Contains(q, -1e-9);
      bool loose = p.Contains(q) && hp.Contains(q, 1e-9);
      bool got = clipped.Contains(q);
      // Allow epsilon slack exactly on the boundary.
      EXPECT_TRUE(got == expectation || got == loose)
          << "point (" << q.x << ", " << q.y << ") iter " << iter;
    }
  }
}

}  // namespace
}  // namespace stpq
