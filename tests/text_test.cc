// Tests for text/: vocabulary, keyword sets, inverted index, signatures.
#include <gtest/gtest.h>

#include <algorithm>

#include "text/inverted_index.h"
#include "text/keyword_set.h"
#include "text/signature.h"
#include "text/vocabulary.h"
#include "util/rng.h"

namespace stpq {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  TermId pizza = v.Intern("pizza");
  TermId burger = v.Intern("burger");
  EXPECT_NE(pizza, burger);
  EXPECT_EQ(v.Intern("pizza"), pizza);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Term(pizza), "pizza");
}

TEST(VocabularyTest, LookupMissing) {
  Vocabulary v;
  v.Intern("espresso");
  EXPECT_TRUE(v.Lookup("espresso").ok());
  Result<TermId> missing = v.Lookup("noexist");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(VocabularyTest, SyntheticHasRequestedSize) {
  Vocabulary v = Vocabulary::Synthetic(256);
  EXPECT_EQ(v.size(), 256u);
  EXPECT_TRUE(v.Lookup("kw000").ok());
  EXPECT_TRUE(v.Lookup("kw255").ok());
}

TEST(KeywordSetTest, InsertContainsCount) {
  KeywordSet s(130);
  EXPECT_TRUE(s.Empty());
  s.Insert(0);
  s.Insert(129);
  s.Insert(129);  // duplicate
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(129));
  EXPECT_FALSE(s.Contains(64));
}

TEST(KeywordSetTest, SetAlgebra) {
  KeywordSet a(64, {1, 2, 3});
  KeywordSet b(64, {3, 4});
  EXPECT_EQ(a.IntersectCount(b), 1u);
  EXPECT_EQ(a.UnionCount(b), 4u);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(KeywordSet(64, {10})));
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 4u);
}

TEST(KeywordSetTest, JaccardMatchesDefinition) {
  KeywordSet a(64, {1, 2});
  KeywordSet b(64, {2, 3, 4});
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 0.25);  // |{2}| / |{1,2,3,4}|
  EXPECT_DOUBLE_EQ(a.Jaccard(a), 1.0);
  EXPECT_DOUBLE_EQ(KeywordSet(64).Jaccard(KeywordSet(64)), 0.0);
}

TEST(KeywordSetTest, PaperExampleScores) {
  // Figure 2 + Definition 1 with W = {italian, pizza}, lambda = 0.5:
  // Ontario's Pizza (rating .8, {pizza, italian}): s = .5*.8 + .5*1 = 0.9.
  // Beijing Restaurant (rating .6, {chinese, asian}): s = .5*.6 + 0 = 0.3.
  Vocabulary v;
  TermId italian = v.Intern("italian"), pizza = v.Intern("pizza");
  TermId chinese = v.Intern("chinese"), asian = v.Intern("asian");
  const uint32_t w = 16;
  KeywordSet query(w, {italian, pizza});
  KeywordSet ontario(w, {pizza, italian});
  KeywordSet beijing(w, {chinese, asian});
  double lambda = 0.5;
  EXPECT_DOUBLE_EQ((1 - lambda) * 0.8 + lambda * ontario.Jaccard(query), 0.9);
  EXPECT_DOUBLE_EQ((1 - lambda) * 0.6 + lambda * beijing.Jaccard(query), 0.3);
}

TEST(KeywordSetTest, ToTermsSorted) {
  KeywordSet s(200, {150, 3, 64});
  std::vector<TermId> terms = s.ToTerms();
  EXPECT_EQ(terms, (std::vector<TermId>{3, 64, 150}));
}

TEST(KeywordSetTest, CrossWordBoundaries) {
  KeywordSet a(192, {63, 64, 127, 128, 191});
  KeywordSet b(192, {64, 128});
  EXPECT_EQ(a.IntersectCount(b), 2u);
  EXPECT_EQ(a.UnionCount(b), 5u);
}

TEST(InvertedIndexTest, PostingsAndFrequency) {
  const uint32_t w = 8;
  std::vector<KeywordSet> docs = {
      KeywordSet(w, {0, 1}),
      KeywordSet(w, {1, 2}),
      KeywordSet(w, {2}),
      KeywordSet(w, {1}),
  };
  InvertedIndex idx = InvertedIndex::Build(w, docs);
  EXPECT_EQ(idx.DocumentFrequency(1), 3u);
  EXPECT_EQ(idx.DocumentFrequency(7), 0u);
  auto p1 = idx.Postings(1);
  EXPECT_EQ(std::vector<uint32_t>(p1.begin(), p1.end()),
            (std::vector<uint32_t>{0, 1, 3}));
  EXPECT_TRUE(idx.Postings(200).empty());
  EXPECT_EQ(idx.TotalPostings(), 6u);
}

TEST(InvertedIndexTest, MatchAnyAndAll) {
  const uint32_t w = 8;
  std::vector<KeywordSet> docs = {
      KeywordSet(w, {0, 1}),
      KeywordSet(w, {1, 2}),
      KeywordSet(w, {2}),
      KeywordSet(w, {0, 2}),
  };
  InvertedIndex idx = InvertedIndex::Build(w, docs);
  EXPECT_EQ(idx.MatchAny(KeywordSet(w, {0, 1})),
            (std::vector<uint32_t>{0, 1, 3}));
  EXPECT_EQ(idx.MatchAll(KeywordSet(w, {0, 2})),
            (std::vector<uint32_t>{3}));
  EXPECT_TRUE(idx.MatchAll(KeywordSet(w, {0, 1, 2})).empty());
  EXPECT_TRUE(idx.MatchAny(KeywordSet(w)).empty());
}

TEST(InvertedIndexTest, MatchesBruteForceOnRandomCorpus) {
  const uint32_t w = 32;
  Rng rng(21);
  std::vector<KeywordSet> docs;
  for (int i = 0; i < 500; ++i) {
    KeywordSet d(w);
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 4));
    for (uint32_t j = 0; j < n; ++j) {
      d.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    docs.push_back(std::move(d));
  }
  InvertedIndex idx = InvertedIndex::Build(w, docs);
  for (int q = 0; q < 20; ++q) {
    KeywordSet query(w);
    for (int j = 0; j < 3; ++j) {
      query.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    std::vector<uint32_t> expect_any, expect_all;
    for (uint32_t i = 0; i < docs.size(); ++i) {
      if (docs[i].Intersects(query)) expect_any.push_back(i);
      if (docs[i].IntersectCount(query) == query.Count()) {
        expect_all.push_back(i);
      }
    }
    EXPECT_EQ(idx.MatchAny(query), expect_any);
    EXPECT_EQ(idx.MatchAll(query), expect_all);
  }
}

TEST(SignatureTest, CoversAndUnion) {
  Signature a(64), b(64);
  a.SetBit(3);
  a.SetBit(40);
  b.SetBit(3);
  EXPECT_TRUE(a.Covers(b));
  EXPECT_FALSE(b.Covers(a));
  b.UnionWith(a);
  EXPECT_TRUE(b.Covers(a));
}

TEST(SignatureSchemeTest, NoFalseNegatives) {
  // A keyword present in the set is always reported possibly-present; the
  // upper-bound intersection therefore never undercounts.
  const uint32_t w = 128;
  SignatureScheme scheme(256, 3);
  Rng rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    KeywordSet set(w);
    for (int j = 0; j < 4; ++j) {
      set.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    Signature sig = scheme.SetSignature(set);
    KeywordSet query(w);
    for (int j = 0; j < 3; ++j) {
      query.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
    }
    uint32_t actual = set.IntersectCount(query);
    uint32_t bound = scheme.UpperBoundIntersect(sig, query);
    EXPECT_GE(bound, actual);
    if (set.Intersects(query)) {
      EXPECT_TRUE(scheme.MayIntersect(sig, query));
    }
  }
}

TEST(SignatureSchemeTest, FalsePositiveRateIsModerate) {
  // Disjoint query keywords should usually not match a small signature.
  const uint32_t w = 256;
  SignatureScheme scheme(512, 3);
  Rng rng(37);
  int false_positives = 0;
  const int trials = 1000;
  for (int iter = 0; iter < trials; ++iter) {
    KeywordSet set(w, {static_cast<TermId>(rng.UniformInt(0, 127))});
    KeywordSet query(w,
                     {static_cast<TermId>(rng.UniformInt(128, w - 1))});
    if (scheme.UpperBoundIntersect(scheme.SetSignature(set), query) > 0) {
      ++false_positives;
    }
  }
  EXPECT_LT(false_positives, trials / 10);
}

TEST(SignatureSchemeTest, DeterministicAcrossInstances) {
  SignatureScheme a(256, 3), b(256, 3);
  KeywordSet set(64, {1, 7, 33});
  EXPECT_TRUE(a.SetSignature(set) == b.SetSignature(set));
}

// ------------------------- keyword-signature properties (one-word OR-fold)

namespace {

/// Reference OR-fold of the raw blocks — what signature() must equal.
uint64_t FoldBlocks(const KeywordSet& s) {
  uint64_t sig = 0;
  for (uint64_t b : s.blocks()) sig |= b;
  return sig;
}

/// Reference intersection test over the raw blocks, bypassing the
/// signature fast path.
bool BlockScanIntersects(const KeywordSet& a, const KeywordSet& b) {
  for (size_t i = 0; i < a.blocks().size(); ++i) {
    if (a.blocks()[i] & b.blocks()[i]) return true;
  }
  return false;
}

/// Random set over `w` terms; expected density `bits` terms (possibly 0).
KeywordSet RandomSet(Rng& rng, uint32_t w, uint32_t bits) {
  KeywordSet s(w);
  for (uint32_t i = 0; i < bits; ++i) {
    s.Insert(static_cast<TermId>(rng.UniformInt(0, w - 1)));
  }
  return s;
}

}  // namespace

TEST(KeywordSignatureProperty, IntersectsAgreesWithBlockScan) {
  // Universes deliberately include sizes not divisible by 64 and sub-word
  // sizes where the signature is exact.
  const uint32_t universes[] = {1, 5, 63, 64, 65, 100, 999, 4113};
  Rng rng(321);
  for (uint32_t w : universes) {
    for (int iter = 0; iter < 200; ++iter) {
      // Densities from empty through dense: empty sets must never
      // intersect anything, dense ones exercise the fallback scan.
      const uint32_t bits_a = static_cast<uint32_t>(rng.UniformInt(0, 8));
      const uint32_t bits_b = static_cast<uint32_t>(rng.UniformInt(0, 8));
      KeywordSet a = RandomSet(rng, w, bits_a);
      KeywordSet b = RandomSet(rng, w, bits_b);
      const bool expected = BlockScanIntersects(a, b);
      EXPECT_EQ(a.Intersects(b), expected) << "universe " << w;
      EXPECT_EQ(b.Intersects(a), expected) << "universe " << w;
      // The signed short-circuit must not change the exact counters
      // either: IntersectCount is zero iff the scan finds no overlap,
      // and Jaccard stays consistent with the count-based definition.
      EXPECT_EQ(a.IntersectCount(b) > 0, expected);
      const uint32_t uni = a.UnionCount(b);
      const double expected_jaccard =
          uni == 0 ? 0.0
                   : static_cast<double>(a.IntersectCount(b)) / uni;
      EXPECT_DOUBLE_EQ(a.Jaccard(b), expected_jaccard);
    }
  }
}

TEST(KeywordSignatureProperty, SignatureIsExactNegative) {
  // sig_a & sig_b == 0 must *prove* disjointness (no false negatives).
  Rng rng(654);
  for (int iter = 0; iter < 500; ++iter) {
    KeywordSet a = RandomSet(rng, 777, 6);
    KeywordSet b = RandomSet(rng, 777, 6);
    if ((a.signature() & b.signature()) == 0) {
      EXPECT_FALSE(BlockScanIntersects(a, b));
    }
  }
}

TEST(KeywordSignatureProperty, MaintainedAcrossMutations) {
  Rng rng(987);
  for (int iter = 0; iter < 100; ++iter) {
    const uint32_t w = static_cast<uint32_t>(rng.UniformInt(1, 300));
    KeywordSet a = RandomSet(rng, w, 5);
    EXPECT_EQ(a.signature(), FoldBlocks(a));

    // UnionWith folds the other set's signature in.
    KeywordSet b = RandomSet(rng, w, 5);
    a.UnionWith(b);
    EXPECT_EQ(a.signature(), FoldBlocks(a));

    // FromBlocks recomputes from raw storage; round-tripping preserves
    // both the blocks and the signature.
    KeywordSet c = KeywordSet::FromBlocks(w, a.blocks());
    EXPECT_EQ(c.signature(), a.signature());
    EXPECT_TRUE(c == a);
  }
}

TEST(KeywordSignatureProperty, EmptySets) {
  KeywordSet empty(100), other(100, {3, 64, 99});
  EXPECT_EQ(empty.signature(), 0u);
  EXPECT_FALSE(empty.Intersects(other));
  EXPECT_FALSE(other.Intersects(empty));
  EXPECT_FALSE(empty.Intersects(empty));
  EXPECT_DOUBLE_EQ(empty.Jaccard(empty), 0.0);
  KeywordSet zero_universe;
  EXPECT_FALSE(zero_universe.Intersects(zero_universe));
}

}  // namespace
}  // namespace stpq
