// Tests for the extended public API: the incremental StpsCursor, result
// explanation, the Voronoi cell cache, index introspection, and R-tree
// deletion.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "core/brute_force.h"
#include "core/cursor.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/score.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "index/index_stats.h"
#include "paper_example.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace stpq {
namespace {

namespace ex = testing_example;

std::vector<const FeatureTable*> TablePtrs(const Dataset& ds) {
  std::vector<const FeatureTable*> out;
  for (const FeatureTable& t : ds.feature_tables) out.push_back(&t);
  return out;
}

// ----------------------------------------------------------------- cursor

TEST(CursorTest, StreamsWholeDatasetInScoreOrder) {
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 200;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 40;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 1;
  qcfg.radius = 0.05;
  Query q = GenerateQueries(ds, qcfg)[0];
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();

  std::unique_ptr<StpsCursor> cursor = engine.OpenCursor(q).TakeValue();
  std::set<ObjectId> seen;
  double prev = std::numeric_limits<double>::infinity();
  size_t count = 0;
  while (auto e = cursor->Next()) {
    EXPECT_LE(e->score, prev + 1e-9) << "cursor out of order";
    prev = e->score;
    EXPECT_TRUE(seen.insert(e->object).second) << "duplicate object";
    EXPECT_NEAR(e->score, brute.Tau(engine.objects()[e->object].pos, q),
                1e-9);
    ++count;
  }
  EXPECT_EQ(count, engine.objects().size());
  EXPECT_FALSE(cursor->Next().has_value());  // stays exhausted
}

TEST(CursorTest, PrefixMatchesTopK) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 5);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  QueryResult topk = engine.Execute(q, Algorithm::kStps).TakeValue();
  std::unique_ptr<StpsCursor> cursor = engine.OpenCursor(q).TakeValue();
  for (size_t i = 0; i < topk.entries.size(); ++i) {
    auto e = cursor->Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_NEAR(e->score, topk.entries[i].score, 1e-12) << "rank " << i;
  }
}

TEST(CursorTest, AccumulatesStats) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 1);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  std::unique_ptr<StpsCursor> cursor = engine.OpenCursor(q).TakeValue();
  ASSERT_TRUE(cursor->Next().has_value());
  EXPECT_GT(cursor->stats().features_retrieved, 0u);
  EXPECT_GT(cursor->stats().combinations_emitted, 0u);
}

// ---------------------------------------------------------------- explain

TEST(ExplainTest, PaperExampleContributions) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                {}).TakeValue();
  // Hotel p6 (id 5): tau = s(Ontario's Pizza) + s(Royal Coffe Shop).
  Explanation e = ExplainScore(&engine, q, 5);
  EXPECT_NEAR(e.total, ex::kTopHotelScore, 1e-9);
  ASSERT_EQ(e.contributions.size(), 2u);
  ASSERT_TRUE(e.contributions[0].has_feature);
  EXPECT_EQ(ds.feature_tables[0].Get(e.contributions[0].feature).name,
            "Ontario's Pizza");
  EXPECT_NEAR(e.contributions[0].score, ex::kOntarioScore, 1e-12);
  EXPECT_NEAR(e.contributions[0].distance,
              Distance({6, 5.5}, {7, 6}), 1e-12);
  ASSERT_TRUE(e.contributions[1].has_feature);
  EXPECT_EQ(ds.feature_tables[1].Get(e.contributions[1].feature).name,
            "Royal Coffe Shop");
}

TEST(ExplainTest, NoFeatureContribution) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  q.radius = 0.5;  // nothing near hotel p7 at (10, 10)
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  Explanation e = ExplainScore(&engine, q, 6);
  EXPECT_EQ(e.total, 0.0);
  for (const Contribution& c : e.contributions) {
    EXPECT_FALSE(c.has_feature);
    EXPECT_EQ(c.score, 0.0);
  }
}

TEST(ExplainTest, MatchesQueryScoresForAllVariants) {
  SyntheticConfig cfg;
  cfg.num_objects = 150;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 30;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 1;
  qcfg.radius = 0.05;
  std::vector<Query> queries;
  for (ScoreVariant v : {ScoreVariant::kRange, ScoreVariant::kInfluence,
                         ScoreVariant::kNearestNeighbor}) {
    qcfg.variant = v;
    queries.push_back(GenerateQueries(ds, qcfg)[0]);
  }
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    ScoreVariant v = q.variant;
    QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
    for (const ResultEntry& entry : r.entries) {
      Explanation e = ExplainScore(&engine, q, entry.object);
      EXPECT_NEAR(e.total, entry.score, 1e-9) << VariantName(v);
    }
  }
}

// ----------------------------------------------------------- Voronoi cache

TEST(VoronoiCacheTest, BasicFindPut) {
  VoronoiCellCache cache;
  KeywordSet kw(16, {1, 2});
  EXPECT_FALSE(cache.Find(0, 7, kw).has_value());
  cache.Put(0, 7, kw, ConvexPolygon::FromRect(MakeRect2(0, 0, 1, 1)));
  std::optional<ConvexPolygon> cell = cache.Find(0, 7, kw);
  ASSERT_TRUE(cell.has_value());
  EXPECT_NEAR(cell->Area(), 1.0, 1e-12);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Different keywords / set / feature are distinct keys.
  EXPECT_FALSE(cache.Find(0, 7, KeywordSet(16, {1})).has_value());
  EXPECT_FALSE(cache.Find(1, 7, kw).has_value());
  EXPECT_FALSE(cache.Find(0, 8, kw).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(VoronoiCacheTest, EngineReusesCellsAcrossQueries) {
  SyntheticConfig cfg;
  cfg.num_objects = 400;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 40;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 1;
  qcfg.variant = ScoreVariant::kNearestNeighbor;
  Query q = GenerateQueries(ds, qcfg)[0];
  EngineOptions opts;
  opts.reuse_voronoi_cells = true;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();

  QueryResult first = engine.Execute(q, Algorithm::kStps).TakeValue();
  EXPECT_EQ(first.stats.voronoi_cache_hits, 0u);
  EXPECT_GT(engine.voronoi_cache()->size(), 0u);
  QueryResult second = engine.Execute(q, Algorithm::kStps).TakeValue();
  EXPECT_GT(second.stats.voronoi_cache_hits, 0u);
  EXPECT_EQ(second.stats.voronoi_cells, 0u);  // everything served cached
  // Same results, and both correct.
  std::vector<ResultEntry> expected = brute.TopK(q);
  ASSERT_EQ(second.entries.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(second.entries[i].score, expected[i].score, 1e-9);
  }
}

TEST(VoronoiCacheTest, DifferentKeywordsDontReuse) {
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 20;
  Dataset ds = GenerateSynthetic(cfg);
  EngineOptions opts;
  opts.reuse_voronoi_cells = true;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  Query q1;
  q1.k = 3;
  q1.variant = ScoreVariant::kNearestNeighbor;
  q1.keywords = {KeywordSet(16, {0, 1})};
  Query q2 = q1;
  q2.keywords = {KeywordSet(16, {2, 3})};
  QueryResult r1 = engine.Execute(q1, Algorithm::kStps).TakeValue();
  (void)r1;
  QueryResult r2 = engine.Execute(q2, Algorithm::kStps).TakeValue();
  EXPECT_EQ(r2.stats.voronoi_cache_hits, 0u);
}

// -------------------------------------------------------------- validation

TEST(ValidationTest, ExecuteRejectsMalformedQueries) {
  Dataset ds = ex::ExampleDataset();
  Query good = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  EXPECT_TRUE(engine.Execute(good, Algorithm::kStps).ok());

  Query bad = good;
  bad.keywords.pop_back();  // keyword-set count != num_feature_sets()
  EXPECT_EQ(engine.Execute(bad, Algorithm::kStps).status().code(),
            StatusCode::kInvalidArgument);

  bad = good;
  bad.k = 0;
  EXPECT_EQ(engine.Execute(bad, Algorithm::kStds).status().code(),
            StatusCode::kInvalidArgument);

  bad = good;
  bad.radius = 0.0;
  EXPECT_EQ(engine.Execute(bad, Algorithm::kStps).status().code(),
            StatusCode::kInvalidArgument);
  // The NN variant ignores the radius, so the same radius is accepted.
  bad.variant = ScoreVariant::kNearestNeighbor;
  EXPECT_TRUE(engine.Execute(bad, Algorithm::kStps).ok());

  bad = good;
  bad.lambda = 1.5;
  EXPECT_EQ(engine.Execute(bad, Algorithm::kStps).status().code(),
            StatusCode::kInvalidArgument);
  bad.lambda = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.Execute(bad, Algorithm::kStps).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidationTest, OpenCursorRejectsMalformedAndNonRangeQueries) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  EXPECT_TRUE(engine.OpenCursor(q).ok());

  Query bad = q;
  bad.radius = -1.0;
  EXPECT_EQ(engine.OpenCursor(bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = q;
  bad.variant = ScoreVariant::kInfluence;
  EXPECT_EQ(engine.OpenCursor(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidationTest, CreateRejectsBadOptionsAndBuildsGoodEngines) {
  Dataset ds = ex::ExampleDataset();

  EngineOptions bad;
  bad.storage.page_size = 16;  // below the 64-byte minimum
  EXPECT_EQ(Engine::Build(ds.objects,
                           std::vector<FeatureTable>(ds.feature_tables), bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  bad = EngineOptions{};
  bad.fill = 0.0;
  EXPECT_FALSE(Engine::Build(ds.objects,
                              std::vector<FeatureTable>(ds.feature_tables),
                              bad)
                   .ok());

  bad = EngineOptions{};
  bad.signature_hashes = 0;
  EXPECT_FALSE(Engine::Build(ds.objects,
                              std::vector<FeatureTable>(ds.feature_tables),
                              bad)
                   .ok());

  // A valid configuration builds a working engine that survives the move
  // out of the Result.
  Result<Engine> built = Engine::Build(
      ds.objects, std::vector<FeatureTable>(ds.feature_tables), {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Engine engine = built.TakeValue();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
  EXPECT_FALSE(r.entries.empty());
}

TEST(ValidationTest, BuildRejectsBadStorageOptions) {
  Dataset ds = ex::ExampleDataset();

  // Build is in-memory only: the file backend comes from Engine::Open.
  EngineOptions bad;
  bad.storage.backend = StorageBackend::kFile;
  bad.storage.path = "/tmp/whatever.stpqx";
  Result<Engine> r = Engine::Build(
      ds.objects, std::vector<FeatureTable>(ds.feature_tables), bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // A file backend without a path is malformed no matter the entry point.
  bad = EngineOptions{};
  bad.storage.backend = StorageBackend::kFile;
  r = Engine::Build(ds.objects,
                    std::vector<FeatureTable>(ds.feature_tables), bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // And a path with the simulated backend is a contradiction.
  bad = EngineOptions{};
  bad.storage.path = "/tmp/whatever.stpqx";
  r = Engine::Build(ds.objects,
                    std::vector<FeatureTable>(ds.feature_tables), bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // A built engine reports the simulated store behind its pools.
  Engine engine = Engine::Build(
      ds.objects, std::vector<FeatureTable>(ds.feature_tables), {})
      .TakeValue();
  EXPECT_EQ(engine.page_store().backend(), StorageBackend::kSimulated);
}

// ------------------------------------------------------------ index stats

TEST(IndexStatsTest, ReportsStructure) {
  SyntheticConfig cfg;
  cfg.num_objects = 0;
  cfg.num_features_per_set = 3000;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 200;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex srt(&ds.feature_tables[0], opts);
  IndexStatsReport r = AnalyzeIndex(srt);
  EXPECT_EQ(r.record_count, 3000u);
  EXPECT_GE(r.height, 2u);
  EXPECT_GT(r.leaf_count, 0u);
  EXPECT_GT(r.avg_leaf_fill, 0.5);  // bulk-loaded: nearly full
  EXPECT_FALSE(r.ToString().empty());
}

TEST(IndexStatsTest, SrtLeavesClusterScoreAndText) {
  // The quantified Section-4.2 claim: SRT leaves have smaller score spread
  // and fewer distinct keywords than the spatial-only IR2 leaves.
  SyntheticConfig cfg;
  cfg.num_objects = 0;
  cfg.num_features_per_set = 5000;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 300;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex srt(&ds.feature_tables[0], opts);
  Ir2Tree ir2(&ds.feature_tables[0], opts);
  IndexStatsReport rs = AnalyzeIndex(srt);
  IndexStatsReport ri = AnalyzeIndex(ir2);
  EXPECT_LT(rs.avg_leaf_score_spread, ri.avg_leaf_score_spread);
  EXPECT_LT(rs.avg_leaf_keyword_count, ri.avg_leaf_keyword_count);
  // The price: SRT leaves are spatially wider.
  EXPECT_GT(rs.avg_leaf_spatial_margin, ri.avg_leaf_spatial_margin);
}

// --------------------------------------------------------- rtree deletion

TEST(RTreeDeleteTest, DeleteMakesRecordUnreachable) {
  RTreeOptions opts;
  opts.max_entries = 8;
  RTree<2> tree(opts);
  Rng rng(31);
  std::vector<RTree<2>::Entry> pts;
  for (uint32_t i = 0; i < 500; ++i) {
    Point p{rng.Uniform(), rng.Uniform()};
    pts.push_back({PointRect(p), i, {}});
    tree.Insert(pts.back().rect, i);
  }
  EXPECT_TRUE(tree.Delete(pts[123].rect, 123));
  EXPECT_EQ(tree.size(), 499u);
  bool found = false;
  tree.ForEachInRange(pts[123].rect,
                      [&](uint32_t id, const Rect2&, const NoAug&) {
                        if (id == 123) found = true;
                      });
  EXPECT_FALSE(found);
  // Deleting again fails.
  EXPECT_FALSE(tree.Delete(pts[123].rect, 123));
  // Everything else still reachable.
  std::set<uint32_t> seen;
  tree.ForEachInRange(MakeRect2(0, 0, 1, 1),
                      [&](uint32_t id, const Rect2&, const NoAug&) {
                        seen.insert(id);
                      });
  EXPECT_EQ(seen.size(), 499u);
}

TEST(RTreeDeleteTest, DeleteAllEmptiesTree) {
  RTreeOptions opts;
  opts.max_entries = 4;  // aggressive splits and condensations
  RTree<2> tree(opts);
  Rng rng(32);
  std::vector<RTree<2>::Entry> pts;
  for (uint32_t i = 0; i < 200; ++i) {
    Point p{rng.Uniform(), rng.Uniform()};
    pts.push_back({PointRect(p), i, {}});
    tree.Insert(pts.back().rect, i);
  }
  for (uint32_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(tree.Delete(pts[i].rect, i)) << i;
    EXPECT_EQ(tree.size(), 199u - i);
    EXPECT_TRUE(tree.CheckInvariants(
        [](const NoAug&, const NoAug&) { return true; }))
        << "after deleting " << i;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root_id(), kInvalidNodeId);
  // Tree is reusable after emptying.
  tree.Insert(PointRect({0.5, 0.5}), 42);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeDeleteTest, InterleavedInsertDeleteMatchesBruteForce) {
  RTreeOptions opts;
  opts.max_entries = 6;
  RTree<2> tree(opts);
  Rng rng(33);
  std::map<uint32_t, Rect2> live;
  uint32_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      Point p{rng.Uniform(), rng.Uniform()};
      Rect2 r = PointRect(p);
      tree.Insert(r, next_id);
      live[next_id] = r;
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, live.size() - 1));
      EXPECT_TRUE(tree.Delete(it->second, it->first));
      live.erase(it);
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  std::set<uint32_t> seen;
  tree.ForEachInRange(MakeRect2(0, 0, 1, 1),
                      [&](uint32_t id, const Rect2&, const NoAug&) {
                        seen.insert(id);
                      });
  std::set<uint32_t> expect;
  for (const auto& [id, r] : live) expect.insert(id);
  EXPECT_EQ(seen, expect);
  EXPECT_TRUE(tree.CheckInvariants(
      [](const NoAug&, const NoAug&) { return true; }));
}

TEST(RTreeDeleteTest, AugmentsMaintainedAfterDelete) {
  struct MaxAug {
    double value = 0.0;
    static MaxAug Merge(const MaxAug& a, const MaxAug& b) {
      return {std::max(a.value, b.value)};
    }
  };
  RTreeOptions opts;
  opts.max_entries = 4;
  RTree<2, MaxAug> tree(opts);
  Rng rng(34);
  std::vector<std::pair<Rect2, double>> recs;
  for (uint32_t i = 0; i < 300; ++i) {
    Point p{rng.Uniform(), rng.Uniform()};
    double v = rng.Uniform();
    recs.push_back({PointRect(p), v});
    tree.Insert(recs.back().first, i, MaxAug{v});
  }
  for (uint32_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Delete(recs[i].first, i));
  }
  EXPECT_TRUE(tree.CheckInvariants([](const MaxAug& a, const MaxAug& b) {
    return a.value == b.value;
  }));
}

TEST(RTreeDeleteTest, DeleteOnEmptyTree) {
  RTree<2> tree;
  EXPECT_FALSE(tree.Delete(PointRect({0.5, 0.5}), 0));
}

}  // namespace
}  // namespace stpq
