// Tests for storage/: the LRU buffer pool and I/O accounting.
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"

namespace stpq {
namespace {

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Access(1));  // miss
  EXPECT_TRUE(pool.Access(1));   // hit
  EXPECT_EQ(pool.stats().reads, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);     // 1 is now MRU, 2 is LRU
  pool.Access(3);     // evicts 2
  EXPECT_TRUE(pool.Access(1));
  EXPECT_TRUE(pool.Access(3));
  EXPECT_FALSE(pool.Access(2));  // was evicted
}

TEST(BufferPoolTest, CapacityRespected) {
  BufferPool pool(3);
  for (PageId p = 0; p < 10; ++p) pool.Access(p);
  EXPECT_EQ(pool.resident_pages(), 3u);
  EXPECT_EQ(pool.stats().reads, 10u);
}

TEST(BufferPoolTest, UnboundedNeverEvicts) {
  BufferPool pool(0);
  for (PageId p = 0; p < 100; ++p) pool.Access(p);
  for (PageId p = 0; p < 100; ++p) EXPECT_TRUE(pool.Access(p));
  EXPECT_EQ(pool.stats().reads, 100u);
  EXPECT_EQ(pool.stats().hits, 100u);
  EXPECT_EQ(pool.resident_pages(), 100u);
}

TEST(BufferPoolTest, ClearColdCache) {
  BufferPool pool(8);
  pool.Access(1);
  pool.Access(2);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Access(1));  // cold again
  // Counters survive Clear (per-query deltas are the caller's job).
  EXPECT_EQ(pool.stats().reads, 3u);
}

TEST(BufferPoolTest, ResetStatsKeepsPages) {
  BufferPool pool(8);
  pool.Access(1);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().reads, 0u);
  EXPECT_TRUE(pool.Access(1));  // page still resident
}

TEST(BufferPoolTest, StatsDelta) {
  BufferPool pool(8);
  pool.Access(1);
  BufferPoolStats before = pool.stats();
  pool.Access(1);
  pool.Access(2);
  BufferPoolStats delta = pool.stats() - before;
  EXPECT_EQ(delta.reads, 1u);
  EXPECT_EQ(delta.hits, 1u);
}

TEST(BufferPoolTest, StatsDeltaSaturatesOnUnderflow) {
  BufferPool pool(8);
  pool.Access(1);
  pool.Access(1);
  BufferPoolStats newer = pool.stats();  // reads=1, hits=1
  pool.ResetStats();
  // Subtracting the newer snapshot from the (reset) older one must clamp
  // at zero instead of wrapping around to ~2^64.
  BufferPoolStats delta = pool.stats() - newer;
  EXPECT_EQ(delta.reads, 0u);
  EXPECT_EQ(delta.hits, 0u);
}

TEST(BufferPoolSessionTest, SharedSessionAllocatesNoPrivatePool) {
  BufferPool pool(8);
  BufferPool::Session shared_session(&pool, /*isolated=*/false);
  EXPECT_FALSE(shared_session.has_private_pool());
  BufferPool::Session isolated_session(&pool, /*isolated=*/true);
  EXPECT_TRUE(isolated_session.has_private_pool());
  // Shared-mode accesses route through the shared pool and are tallied on
  // the session.
  EXPECT_FALSE(shared_session.Access(1));
  EXPECT_TRUE(shared_session.Access(1));
  EXPECT_EQ(shared_session.stats().reads, 1u);
  EXPECT_EQ(shared_session.stats().hits, 1u);
}

TEST(BufferPoolTest, DistinctNamespacesDontCollide) {
  // Two indexes sharing one pool use page_base offsets; distinct ids are
  // distinct pages.
  BufferPool pool(0);
  constexpr PageId kStride = PageId{1} << 32;
  EXPECT_FALSE(pool.Access(kStride * 1 + 7));
  EXPECT_FALSE(pool.Access(kStride * 2 + 7));
  EXPECT_TRUE(pool.Access(kStride * 1 + 7));
}

TEST(BufferPoolPinTest, PinKeepsPageResidentUnderPressure) {
  BufferPool pool(2);
  ASSERT_TRUE(pool.Pin(1).ok());
  pool.Access(2);
  pool.Access(3);  // would evict 1 by LRU order, but 1 is pinned
  EXPECT_TRUE(pool.Access(1));  // still resident
  EXPECT_EQ(pool.PinCount(1), 1u);
  ASSERT_TRUE(pool.Unpin(1).ok());
  EXPECT_EQ(pool.PinCount(1), 0u);
}

TEST(BufferPoolPinTest, PinsNest) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Pin(7).ok());
  ASSERT_TRUE(pool.Pin(7).ok());
  EXPECT_EQ(pool.PinCount(7), 2u);
  ASSERT_TRUE(pool.Unpin(7).ok());
  EXPECT_EQ(pool.PinCount(7), 1u);  // still pinned once
  ASSERT_TRUE(pool.Unpin(7).ok());
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(BufferPoolPinTest, UnpinOfUnpinnedPageFails) {
  BufferPool pool(4);
  pool.Access(1);
  Status st = pool.Unpin(1);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(BufferPoolPinTest, PinFailsWhenPoolFullOfPinnedPages) {
  BufferPool pool(2);
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(2).ok());
  // Every frame is pinned: a further pin must fail with a descriptive
  // Status, not crash or displace a pinned resident.
  Status st = pool.Pin(3);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("pinned"), std::string::npos);
  EXPECT_TRUE(pool.Access(1));
  EXPECT_TRUE(pool.Access(2));
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolPinTest, FullOfPinnedReadsThrough) {
  BufferPool pool(2);
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(2).ok());
  // Plain accesses still work, but the new page cannot stay resident.
  EXPECT_FALSE(pool.Access(3));
  EXPECT_EQ(pool.resident_pages(), 2u);
  EXPECT_FALSE(pool.Access(3));  // read again: still a miss (read-through)
  ASSERT_TRUE(pool.Unpin(1).ok());
  ASSERT_TRUE(pool.Unpin(2).ok());
}

TEST(BufferPoolPinTest, EvictionSkipsPinnedAndTakesNextLru) {
  BufferPool pool(3);
  ASSERT_TRUE(pool.Pin(1).ok());  // LRU end once 2 and 3 arrive
  pool.Access(2);
  pool.Access(3);
  pool.Access(4);  // 1 is pinned, so 2 (next-oldest) is evicted
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));
  ASSERT_TRUE(pool.Unpin(1).ok());
}

}  // namespace
}  // namespace stpq
