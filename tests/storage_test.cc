// Tests for storage/: the LRU buffer pool, I/O accounting, and the
// PageStore backends behind the pools.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace stpq {
namespace {

TEST(BufferPoolTest, MissThenHit) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Access(1));  // miss
  EXPECT_TRUE(pool.Access(1));   // hit
  EXPECT_EQ(pool.stats().reads, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(1);
  pool.Access(2);
  pool.Access(1);     // 1 is now MRU, 2 is LRU
  pool.Access(3);     // evicts 2
  EXPECT_TRUE(pool.Access(1));
  EXPECT_TRUE(pool.Access(3));
  EXPECT_FALSE(pool.Access(2));  // was evicted
}

TEST(BufferPoolTest, CapacityRespected) {
  BufferPool pool(3);
  for (PageId p = 0; p < 10; ++p) pool.Access(p);
  EXPECT_EQ(pool.resident_pages(), 3u);
  EXPECT_EQ(pool.stats().reads, 10u);
}

TEST(BufferPoolTest, UnboundedNeverEvicts) {
  BufferPool pool(0);
  for (PageId p = 0; p < 100; ++p) pool.Access(p);
  for (PageId p = 0; p < 100; ++p) EXPECT_TRUE(pool.Access(p));
  EXPECT_EQ(pool.stats().reads, 100u);
  EXPECT_EQ(pool.stats().hits, 100u);
  EXPECT_EQ(pool.resident_pages(), 100u);
}

TEST(BufferPoolTest, ClearColdCache) {
  BufferPool pool(8);
  pool.Access(1);
  pool.Access(2);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Access(1));  // cold again
  // Counters survive Clear (per-query deltas are the caller's job).
  EXPECT_EQ(pool.stats().reads, 3u);
}

TEST(BufferPoolTest, ResetStatsKeepsPages) {
  BufferPool pool(8);
  pool.Access(1);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().reads, 0u);
  EXPECT_TRUE(pool.Access(1));  // page still resident
}

TEST(BufferPoolTest, StatsDelta) {
  BufferPool pool(8);
  pool.Access(1);
  BufferPoolStats before = pool.stats();
  pool.Access(1);
  pool.Access(2);
  BufferPoolStats delta = pool.stats() - before;
  EXPECT_EQ(delta.reads, 1u);
  EXPECT_EQ(delta.hits, 1u);
}

TEST(BufferPoolTest, StatsDeltaSaturatesOnUnderflow) {
  BufferPool pool(8);
  pool.Access(1);
  pool.Access(1);
  BufferPoolStats newer = pool.stats();  // reads=1, hits=1
  pool.ResetStats();
  // Subtracting the newer snapshot from the (reset) older one must clamp
  // at zero instead of wrapping around to ~2^64.
  BufferPoolStats delta = pool.stats() - newer;
  EXPECT_EQ(delta.reads, 0u);
  EXPECT_EQ(delta.hits, 0u);
}

TEST(BufferPoolSessionTest, SharedSessionAllocatesNoPrivatePool) {
  BufferPool pool(8);
  BufferPool::Session shared_session(&pool, /*isolated=*/false);
  EXPECT_FALSE(shared_session.has_private_pool());
  BufferPool::Session isolated_session(&pool, /*isolated=*/true);
  EXPECT_TRUE(isolated_session.has_private_pool());
  // Shared-mode accesses route through the shared pool and are tallied on
  // the session.
  EXPECT_FALSE(shared_session.Access(1));
  EXPECT_TRUE(shared_session.Access(1));
  EXPECT_EQ(shared_session.stats().reads, 1u);
  EXPECT_EQ(shared_session.stats().hits, 1u);
}

TEST(BufferPoolTest, DistinctNamespacesDontCollide) {
  // Two indexes sharing one pool use page_base offsets; distinct ids are
  // distinct pages.
  BufferPool pool(0);
  constexpr PageId kStride = PageId{1} << 32;
  EXPECT_FALSE(pool.Access(kStride * 1 + 7));
  EXPECT_FALSE(pool.Access(kStride * 2 + 7));
  EXPECT_TRUE(pool.Access(kStride * 1 + 7));
}

TEST(BufferPoolPinTest, PinKeepsPageResidentUnderPressure) {
  BufferPool pool(2);
  ASSERT_TRUE(pool.Pin(1).ok());
  pool.Access(2);
  pool.Access(3);  // would evict 1 by LRU order, but 1 is pinned
  EXPECT_TRUE(pool.Access(1));  // still resident
  EXPECT_EQ(pool.PinCount(1), 1u);
  ASSERT_TRUE(pool.Unpin(1).ok());
  EXPECT_EQ(pool.PinCount(1), 0u);
}

TEST(BufferPoolPinTest, PinsNest) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Pin(7).ok());
  ASSERT_TRUE(pool.Pin(7).ok());
  EXPECT_EQ(pool.PinCount(7), 2u);
  ASSERT_TRUE(pool.Unpin(7).ok());
  EXPECT_EQ(pool.PinCount(7), 1u);  // still pinned once
  ASSERT_TRUE(pool.Unpin(7).ok());
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(BufferPoolPinTest, UnpinOfUnpinnedPageFails) {
  BufferPool pool(4);
  pool.Access(1);
  Status st = pool.Unpin(1);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(BufferPoolPinTest, PinFailsWhenPoolFullOfPinnedPages) {
  BufferPool pool(2);
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(2).ok());
  // Every frame is pinned: a further pin must fail with a descriptive
  // Status, not crash or displace a pinned resident.
  Status st = pool.Pin(3);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("pinned"), std::string::npos);
  EXPECT_TRUE(pool.Access(1));
  EXPECT_TRUE(pool.Access(2));
  EXPECT_EQ(pool.resident_pages(), 2u);
}

TEST(BufferPoolPinTest, FullOfPinnedReadsThrough) {
  BufferPool pool(2);
  ASSERT_TRUE(pool.Pin(1).ok());
  ASSERT_TRUE(pool.Pin(2).ok());
  // Plain accesses still work, but the new page cannot stay resident.
  EXPECT_FALSE(pool.Access(3));
  EXPECT_EQ(pool.resident_pages(), 2u);
  EXPECT_FALSE(pool.Access(3));  // read again: still a miss (read-through)
  ASSERT_TRUE(pool.Unpin(1).ok());
  ASSERT_TRUE(pool.Unpin(2).ok());
}

TEST(BufferPoolPinTest, EvictionSkipsPinnedAndTakesNextLru) {
  BufferPool pool(3);
  ASSERT_TRUE(pool.Pin(1).ok());  // LRU end once 2 and 3 arrive
  pool.Access(2);
  pool.Access(3);
  pool.Access(4);  // 1 is pinned, so 2 (next-oldest) is evicted
  EXPECT_TRUE(pool.Access(1));
  EXPECT_FALSE(pool.Access(2));
  ASSERT_TRUE(pool.Unpin(1).ok());
}

TEST(PageStoreTest, ParseStorageBackend) {
  EXPECT_EQ(ParseStorageBackend("simulated").value(),
            StorageBackend::kSimulated);
  EXPECT_EQ(ParseStorageBackend("file").value(), StorageBackend::kFile);
  Result<StorageBackend> bad = ParseStorageBackend("bogus");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(PageStoreTest, SimulatedStoreCountsMissesOnly) {
  SimulatedPageStore store;
  BufferPool pool(4, &store);
  pool.Access(1);  // miss -> fetch
  pool.Access(1);  // hit -> no fetch
  pool.Access(2);  // miss -> fetch
  EXPECT_EQ(store.stats().fetches, 2u);
  EXPECT_EQ(store.stats().bytes_read, 0u);
  EXPECT_EQ(store.backend(), StorageBackend::kSimulated);
  // Counting is independent of the store: same reads/hits as a bare pool.
  EXPECT_EQ(pool.stats().reads, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(PageStoreTest, PoolWithoutStoreStillCounts) {
  BufferPool pool(4);
  pool.Access(7);
  pool.Access(7);
  EXPECT_EQ(pool.stats().reads, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.page_store(), nullptr);
}

class FilePageStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stpq_storage_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes `bytes` of a repeating pattern and returns the path.
  std::string MakeFile(const char* name, size_t bytes) {
    std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    for (size_t i = 0; i < bytes; ++i) {
      out.put(static_cast<char>(i & 0xff));
    }
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(FilePageStoreTest, OpenRejectsMissingFile) {
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      (dir_ / "nope.bin").string(),
      {FilePageStore::Extent{0, 1, 0, 4096}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(FilePageStoreTest, OpenRejectsExtentPastEof) {
  std::string path = MakeFile("short.bin", 4096);
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      path, {FilePageStore::Extent{0, 2, 0, 4096}});  // needs 8192 bytes
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FilePageStoreTest, OpenRejectsOverlappingExtents) {
  std::string path = MakeFile("two.bin", 16384);
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      path, {FilePageStore::Extent{0, 2, 0, 4096},
             FilePageStore::Extent{1, 2, 8192, 4096}});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FilePageStoreTest, FetchCountsBytesAndErrors) {
  for (FilePageStore::IoMode mode :
       {FilePageStore::IoMode::kMmap, FilePageStore::IoMode::kPread}) {
    std::string path = MakeFile("data.bin", 3 * 4096);
    Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
        path, {FilePageStore::Extent{10, 3, 0, 4096}}, mode);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    FilePageStore& store = *r.value();
    EXPECT_EQ(store.backend(), StorageBackend::kFile);
    EXPECT_EQ(store.using_mmap(), mode == FilePageStore::IoMode::kMmap);
    store.FetchPage(10);
    store.FetchPage(12);
    EXPECT_EQ(store.stats().fetches, 2u);
    EXPECT_EQ(store.stats().bytes_read, 2u * 4096);
    EXPECT_EQ(store.stats().io_errors, 0u);
    store.FetchPage(13);  // past the extent
    store.FetchPage(9);   // before the extent
    EXPECT_EQ(store.stats().io_errors, 2u);
    EXPECT_EQ(store.stats().fetches, 2u);
  }
}

TEST_F(FilePageStoreTest, PoolMissTriggersFetch) {
  std::string path = MakeFile("pool.bin", 2 * 4096);
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      path, {FilePageStore::Extent{0, 2, 0, 4096}});
  ASSERT_TRUE(r.ok());
  BufferPool pool(4, r.value().get());
  pool.Access(0);  // miss -> file fetch
  pool.Access(0);  // hit -> no fetch
  pool.Access(1);  // miss -> file fetch
  EXPECT_EQ(r.value()->stats().fetches, 2u);
  EXPECT_EQ(r.value()->stats().bytes_read, 2u * 4096);
  // Session pools inherit the shared pool's store.
  {
    BufferPool::Session session(&pool, /*isolated=*/true);
    session.Access(0);  // isolated pool is cold -> fetch
  }
  EXPECT_EQ(r.value()->stats().fetches, 3u);
}

// ---------------------------------------------------------------------------
// Fault injection through the pread seam (pread mode only; mmap has no
// syscall to interrupt).  The seam functions are stateful file-statics:
// install, fetch once, inspect stats() + last_error().
// ---------------------------------------------------------------------------

int g_pread_calls = 0;

/// Fails with EINTR on every odd call; the retry loop must converge.
ssize_t PreadEintrEveryOther(int fd, void* buf, size_t count, off_t offset) {
  if (++g_pread_calls % 2 == 1) {
    errno = EINTR;
    return -1;
  }
  return ::pread(fd, buf, count, offset);
}

/// Hard I/O error: pread fails with EIO immediately.
ssize_t PreadEio(int, void*, size_t, off_t) {
  errno = EIO;
  return -1;
}

/// Torn page: half the slot, then EOF — as if the file were cut mid-slot.
ssize_t PreadTorn(int fd, void* buf, size_t count, off_t offset) {
  if (offset == 0) return ::pread(fd, buf, count > 2048 ? 2048 : count, offset);
  return 0;
}

TEST_F(FilePageStoreTest, EintrIsRetriedNotAnError) {
  std::string path = MakeFile("eintr.bin", 4096);
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      path, {FilePageStore::Extent{0, 1, 0, 4096}},
      FilePageStore::IoMode::kPread);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  g_pread_calls = 0;
  r.value()->SetPreadFnForTest(&PreadEintrEveryOther);
  r.value()->FetchPage(0);
  EXPECT_GT(g_pread_calls, 1) << "the EINTR attempt was not retried";
  EXPECT_EQ(r.value()->stats().fetches, 1u);
  EXPECT_EQ(r.value()->stats().bytes_read, 4096u);
  EXPECT_EQ(r.value()->stats().io_errors, 0u);
  EXPECT_TRUE(r.value()->last_error().ok());
}

TEST_F(FilePageStoreTest, PreadFailureIsTypedIoError) {
  std::string path = MakeFile("eio.bin", 4096);
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      path, {FilePageStore::Extent{0, 1, 0, 4096}},
      FilePageStore::IoMode::kPread);
  ASSERT_TRUE(r.ok());
  r.value()->SetPreadFnForTest(&PreadEio);
  r.value()->FetchPage(0);
  EXPECT_EQ(r.value()->stats().io_errors, 1u);
  // The attempt is still one fetch; no bytes were served.
  EXPECT_EQ(r.value()->stats().fetches, 1u);
  EXPECT_EQ(r.value()->stats().bytes_read, 0u);
  Status err = r.value()->last_error();
  EXPECT_EQ(err.code(), StatusCode::kIoError);
}

TEST_F(FilePageStoreTest, TornPageIsTypedCorruption) {
  // EOF inside a slot means the file is shorter than the extent table
  // promised — a corrupt index, not a transient I/O failure.
  std::string path = MakeFile("torn.bin", 4096);
  Result<std::unique_ptr<FilePageStore>> r = FilePageStore::Open(
      path, {FilePageStore::Extent{0, 1, 0, 4096}},
      FilePageStore::IoMode::kPread);
  ASSERT_TRUE(r.ok());
  r.value()->SetPreadFnForTest(&PreadTorn);
  r.value()->FetchPage(0);
  EXPECT_EQ(r.value()->stats().io_errors, 1u);
  Status err = r.value()->last_error();
  EXPECT_EQ(err.code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace stpq
