// Tests for core/combination: sorted feature streams and the combination
// iterator (Algorithm 4).
#include <gtest/gtest.h>

#include <map>

#include "core/combination.h"
#include "core/score.h"
#include "index/ir2_tree.h"
#include "index/srt_index.h"
#include "paper_example.h"
#include "util/rng.h"

namespace stpq {
namespace {

namespace ex = testing_example;

FeatureTable RandomFeatures(uint64_t seed, uint32_t n, uint32_t universe) {
  Rng rng(seed);
  std::vector<FeatureObject> f;
  for (uint32_t i = 0; i < n; ++i) {
    FeatureObject t;
    t.pos = {rng.Uniform(), rng.Uniform()};
    t.score = rng.Uniform();
    t.keywords = KeywordSet(universe);
    uint32_t nkw = static_cast<uint32_t>(rng.UniformInt(1, 3));
    for (uint32_t j = 0; j < nkw; ++j) {
      t.keywords.Insert(static_cast<TermId>(rng.UniformInt(0, universe - 1)));
    }
    f.push_back(std::move(t));
  }
  return FeatureTable(std::move(f), universe);
}

TEST(SortedFeatureStreamTest, YieldsNonIncreasingScores) {
  FeatureTable table = RandomFeatures(1, 1000, 32);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  KeywordSet query(32, {0, 1, 2});
  QueryStats stats;
  SortedFeatureStream stream(&index, &query, 0.5, &stats);
  double prev = std::numeric_limits<double>::infinity();
  size_t real_count = 0;
  while (auto item = stream.Next()) {
    EXPECT_LE(item->score, prev + 1e-12);
    prev = item->score;
    if (item->id != kVirtualFeature) {
      ++real_count;
      // Exact score and textual relevance.
      const FeatureObject& t = table.Get(item->id);
      EXPECT_NEAR(item->score, PreferenceScore(t, query, 0.5), 1e-12);
      EXPECT_TRUE(t.keywords.Intersects(query));
    } else {
      EXPECT_EQ(item->score, 0.0);
      EXPECT_TRUE(stream.Exhausted());
    }
  }
  // Stream covered exactly the relevant features.
  size_t expected = 0;
  for (const FeatureObject& t : table.All()) {
    if (t.keywords.Intersects(query)) ++expected;
  }
  EXPECT_EQ(real_count, expected);
  EXPECT_EQ(stats.features_retrieved, expected);
}

TEST(SortedFeatureStreamTest, EmptyIndexYieldsOnlyVirtual) {
  FeatureTable table(std::vector<FeatureObject>{}, 8);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  KeywordSet query(8, {0});
  QueryStats stats;
  SortedFeatureStream stream(&index, &query, 0.5, &stats);
  auto item = stream.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->id, kVirtualFeature);
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(SortedFeatureStreamTest, NoRelevantFeaturesYieldsOnlyVirtual) {
  FeatureTable table = RandomFeatures(2, 100, 32);
  FeatureIndexOptions opts;
  SrtIndex index(&table, opts);
  KeywordSet query(32);  // empty query: sim = 0 for everything
  QueryStats stats;
  SortedFeatureStream stream(&index, &query, 0.5, &stats);
  auto item = stream.Next();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->id, kVirtualFeature);
  EXPECT_FALSE(stream.Next().has_value());
}

// Enumerate all combinations via brute force for cross-checking.
struct BruteCombo {
  std::vector<ObjectId> members;
  double score;
};

std::vector<BruteCombo> BruteCombos(
    const std::vector<const FeatureTable*>& tables, const Query& q,
    bool enforce_2r) {
  // Candidate lists: relevant features plus the virtual feature.
  std::vector<std::vector<std::pair<ObjectId, double>>> lists;
  for (size_t i = 0; i < tables.size(); ++i) {
    std::vector<std::pair<ObjectId, double>> list;
    for (const FeatureObject& t : tables[i]->All()) {
      if (t.keywords.Intersects(q.keywords[i])) {
        list.push_back({t.id, PreferenceScore(t, q.keywords[i], q.lambda)});
      }
    }
    list.push_back({kVirtualFeature, 0.0});
    lists.push_back(std::move(list));
  }
  std::vector<BruteCombo> out;
  std::vector<size_t> idx(tables.size(), 0);
  while (true) {
    BruteCombo combo;
    combo.score = 0;
    bool valid = true;
    for (size_t i = 0; i < tables.size(); ++i) {
      combo.members.push_back(lists[i][idx[i]].first);
      combo.score += lists[i][idx[i]].second;
    }
    if (enforce_2r) {
      for (size_t i = 0; i < tables.size() && valid; ++i) {
        if (combo.members[i] == kVirtualFeature) continue;
        for (size_t j = i + 1; j < tables.size() && valid; ++j) {
          if (combo.members[j] == kVirtualFeature) continue;
          double d = Distance(tables[i]->Get(combo.members[i]).pos,
                              tables[j]->Get(combo.members[j]).pos);
          if (d > 2 * q.radius) valid = false;
        }
      }
    }
    if (valid) out.push_back(std::move(combo));
    size_t d = 0;
    while (d < idx.size() && ++idx[d] == lists[d].size()) {
      idx[d] = 0;
      ++d;
    }
    if (d == idx.size()) break;
  }
  std::sort(out.begin(), out.end(),
            [](const BruteCombo& a, const BruteCombo& b) {
              return a.score > b.score;
            });
  return out;
}

class CombinationIteratorTest
    : public ::testing::TestWithParam<PullingStrategy> {};

TEST_P(CombinationIteratorTest, EmitsAllValidCombinationsInScoreOrder) {
  FeatureTable t1 = RandomFeatures(3, 60, 16);
  FeatureTable t2 = RandomFeatures(4, 50, 16);
  FeatureIndexOptions opts;
  SrtIndex i1(&t1, opts), i2(&t2, opts);
  Query q;
  q.radius = 0.1;
  q.lambda = 0.5;
  q.keywords = {KeywordSet(16, {0, 1, 2}), KeywordSet(16, {3, 4})};
  QueryStats stats;
  CombinationIterator it({&i1, &i2}, q, /*enforce_range_constraint=*/true,
                         GetParam(), &stats);
  std::vector<BruteCombo> expected = BruteCombos({&t1, &t2}, q, true);
  double prev = std::numeric_limits<double>::infinity();
  size_t count = 0;
  while (auto c = it.Next()) {
    EXPECT_LE(c->score, prev + 1e-9) << "combination out of order";
    prev = c->score;
    ASSERT_LT(count, expected.size());
    EXPECT_NEAR(c->score, expected[count].score, 1e-9);
    ++count;
  }
  EXPECT_EQ(count, expected.size());
}

TEST_P(CombinationIteratorTest, UnconstrainedEnumeratesFullProduct) {
  FeatureTable t1 = RandomFeatures(5, 12, 8);
  FeatureTable t2 = RandomFeatures(6, 10, 8);
  FeatureIndexOptions opts;
  SrtIndex i1(&t1, opts), i2(&t2, opts);
  Query q;
  q.lambda = 0.3;
  q.keywords = {KeywordSet(8, {0, 1}), KeywordSet(8, {2, 3})};
  QueryStats stats;
  CombinationIterator it({&i1, &i2}, q, /*enforce_range_constraint=*/false,
                         GetParam(), &stats);
  std::vector<BruteCombo> expected = BruteCombos({&t1, &t2}, q, false);
  size_t count = 0;
  double prev = std::numeric_limits<double>::infinity();
  while (auto c = it.Next()) {
    EXPECT_LE(c->score, prev + 1e-9);
    prev = c->score;
    ASSERT_LT(count, expected.size());
    EXPECT_NEAR(c->score, expected[count].score, 1e-9);
    ++count;
  }
  EXPECT_EQ(count, expected.size());
}

TEST_P(CombinationIteratorTest, ThreeFeatureSets) {
  FeatureTable t1 = RandomFeatures(7, 25, 8);
  FeatureTable t2 = RandomFeatures(8, 20, 8);
  FeatureTable t3 = RandomFeatures(9, 15, 8);
  FeatureIndexOptions opts;
  SrtIndex i1(&t1, opts), i2(&t2, opts), i3(&t3, opts);
  Query q;
  q.radius = 0.15;
  q.lambda = 0.5;
  q.keywords = {KeywordSet(8, {0, 1}), KeywordSet(8, {2, 3}),
                KeywordSet(8, {4, 5})};
  QueryStats stats;
  CombinationIterator it({&i1, &i2, &i3}, q, true, GetParam(), &stats);
  std::vector<BruteCombo> expected = BruteCombos({&t1, &t2, &t3}, q, true);
  size_t count = 0;
  while (auto c = it.Next()) {
    ASSERT_LT(count, expected.size());
    EXPECT_NEAR(c->score, expected[count].score, 1e-9);
    ++count;
  }
  EXPECT_EQ(count, expected.size());
}

TEST_P(CombinationIteratorTest, FirstCombinationIsPaperExample) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1]);
  FeatureIndexOptions opts;
  SrtIndex i1(&ds.feature_tables[0], opts), i2(&ds.feature_tables[1], opts);
  QueryStats stats;
  CombinationIterator it({&i1, &i2}, q, true, GetParam(), &stats);
  auto first = it.Next();
  ASSERT_TRUE(first.has_value());
  // {Ontario's Pizza, Royal Coffe Shop}: dist((7,6),(5,5)) = sqrt(5) <= 7.
  EXPECT_NEAR(first->score, ex::kTopHotelScore, 1e-9);
  EXPECT_EQ(ds.feature_tables[0].Get(first->members[0]).name,
            "Ontario's Pizza");
  EXPECT_EQ(ds.feature_tables[1].Get(first->members[1]).name,
            "Royal Coffe Shop");
}

TEST_P(CombinationIteratorTest, LastCombinationIsAllVirtual) {
  FeatureTable t1 = RandomFeatures(10, 10, 8);
  FeatureTable t2 = RandomFeatures(11, 10, 8);
  FeatureIndexOptions opts;
  SrtIndex i1(&t1, opts), i2(&t2, opts);
  Query q;
  q.radius = 0.05;
  q.keywords = {KeywordSet(8, {0}), KeywordSet(8, {1})};
  QueryStats stats;
  CombinationIterator it({&i1, &i2}, q, true, GetParam(), &stats);
  Combination last;
  while (auto c = it.Next()) last = *c;
  EXPECT_EQ(last.members,
            (std::vector<ObjectId>{kVirtualFeature, kVirtualFeature}));
  EXPECT_EQ(last.score, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CombinationIteratorTest,
                         ::testing::Values(PullingStrategy::kPrioritized,
                                           PullingStrategy::kRoundRobin),
                         [](const ::testing::TestParamInfo<PullingStrategy>&
                                param_info) {
                           return param_info.param ==
                                          PullingStrategy::kPrioritized
                                      ? "Prioritized"
                                      : "RoundRobin";
                         });

TEST(CombinationIteratorTest, PrioritizedPullsFewerFeatures) {
  // Ablation sanity: on a dataset where one feature set is much larger,
  // the prioritized strategy should not pull more features than
  // round-robin (Definition 5 targets the threshold-defining set).
  FeatureTable t1 = RandomFeatures(12, 2000, 16);
  FeatureTable t2 = RandomFeatures(13, 50, 16);
  FeatureIndexOptions opts;
  SrtIndex i1(&t1, opts), i2(&t2, opts);
  Query q;
  q.radius = 0.05;
  q.keywords = {KeywordSet(16, {0, 1, 2}), KeywordSet(16, {3, 4, 5})};
  auto pulls = [&](PullingStrategy s) {
    QueryStats stats;
    CombinationIterator it({&i1, &i2}, q, true, s, &stats);
    for (int i = 0; i < 5; ++i) {
      if (!it.Next()) break;
    }
    return stats.features_retrieved;
  };
  EXPECT_LE(pulls(PullingStrategy::kPrioritized),
            pulls(PullingStrategy::kRoundRobin));
}

TEST(CombinationIteratorTest, SingleFeatureSet) {
  FeatureTable t1 = RandomFeatures(14, 30, 8);
  FeatureIndexOptions opts;
  SrtIndex i1(&t1, opts);
  Query q;
  q.radius = 0.1;
  q.keywords = {KeywordSet(8, {0, 1})};
  QueryStats stats;
  CombinationIterator it({&i1}, q, true, PullingStrategy::kPrioritized,
                         &stats);
  std::vector<BruteCombo> expected = BruteCombos({&t1}, q, true);
  size_t count = 0;
  while (auto c = it.Next()) {
    ASSERT_LT(count, expected.size());
    EXPECT_NEAR(c->score, expected[count].score, 1e-12);
    ++count;
  }
  EXPECT_EQ(count, expected.size());
}

}  // namespace
}  // namespace stpq
