// Stress and property tests that cut across modules: the workload runner,
// long randomized runs, degenerate data layouts, and engine re-entrancy.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/score.h"
#include "core/workload.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "util/rng.h"

namespace stpq {
namespace {

std::vector<const FeatureTable*> TablePtrs(const Dataset& ds) {
  std::vector<const FeatureTable*> out;
  for (const FeatureTable& t : ds.feature_tables) out.push_back(&t);
  return out;
}

TEST(WorkloadTest, SummarizesCosts) {
  SyntheticConfig cfg;
  cfg.num_objects = 500;
  cfg.num_features_per_set = 400;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 50;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 10;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  WorkloadSummary s = RunWorkload(engine, queries, Algorithm::kStps, 0.1).TakeValue();
  EXPECT_EQ(s.queries, 10u);
  EXPECT_GT(s.total_ms.mean, 0.0);
  EXPECT_LE(s.total_ms.p50, s.total_ms.p95);
  EXPECT_LE(s.total_ms.p95, s.total_ms.max);
  EXPECT_GT(s.mean_page_reads, 0.0);
  EXPECT_NEAR(s.total_ms.mean, s.cpu_ms.mean + s.io_ms.mean, 1e-9);
  EXPECT_GT(s.aggregate.features_retrieved, 0u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(WorkloadTest, EmptyWorkload) {
  SyntheticConfig cfg;
  cfg.num_objects = 10;
  cfg.num_features_per_set = 10;
  cfg.num_feature_sets = 1;
  Dataset ds = GenerateSynthetic(cfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  WorkloadSummary s = RunWorkload(engine, {}, Algorithm::kStps, 0.1).TakeValue();
  EXPECT_EQ(s.queries, 0u);
  EXPECT_EQ(s.total_ms.mean, 0.0);
}

TEST(WorkloadTest, IoCostScalesLinearly) {
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 2;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  WorkloadSummary cheap = RunWorkload(engine, queries, Algorithm::kStps, 0.1).TakeValue();
  WorkloadSummary costly = RunWorkload(engine, queries, Algorithm::kStps, 1.0).TakeValue();
  EXPECT_NEAR(costly.io_ms.mean, 10.0 * cheap.io_ms.mean, 1e-6);
}

TEST(StressTest, EngineIsReentrantAcrossVariantsAndAlgorithms) {
  // Interleave variants, algorithms and k values on one engine; every
  // result must match brute force (the engine carries no per-query state).
  SyntheticConfig cfg;
  cfg.num_objects = 250;
  cfg.num_features_per_set = 200;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 30;
  cfg.cluster_stddev = 0.02;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                {}).TakeValue();
  Rng rng(91);
  for (int step = 0; step < 30; ++step) {
    QueryWorkloadConfig qcfg;
    qcfg.seed = 1000 + step;
    qcfg.count = 1;
    qcfg.k = static_cast<uint32_t>(rng.UniformInt(1, 25));
    qcfg.radius = rng.Uniform(0.01, 0.15);
    qcfg.lambda = rng.Uniform(0.0, 1.0);
    qcfg.variant = static_cast<ScoreVariant>(rng.UniformInt(0, 2));
    Query q = GenerateQueries(ds, qcfg)[0];
    Algorithm alg = rng.Bernoulli(0.5) ? Algorithm::kStds : Algorithm::kStps;
    QueryResult r = engine.Execute(q, alg).TakeValue();
    std::vector<ResultEntry> expected = brute.TopK(q);
    ASSERT_EQ(r.entries.size(), expected.size()) << "step " << step;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(r.entries[i].score, expected[i].score, 1e-9)
          << "step " << step << " rank " << i << " variant "
          << VariantName(q.variant);
    }
  }
}

TEST(StressTest, DegenerateAllObjectsOnePoint) {
  // Every object at the same location: ties everywhere, all algorithms
  // must still return k results with equal scores.
  std::vector<DataObject> objects;
  for (uint32_t i = 0; i < 50; ++i) {
    objects.push_back({i, {0.5, 0.5}, ""});
  }
  std::vector<FeatureObject> features;
  Rng rng(92);
  for (uint32_t i = 0; i < 100; ++i) {
    features.push_back({i,
                        {rng.Uniform(), rng.Uniform()},
                        rng.Uniform(),
                        KeywordSet(8, {static_cast<TermId>(i % 8)}),
                        ""});
  }
  std::vector<FeatureTable> tables;
  tables.emplace_back(std::move(features), 8);
  Engine engine = Engine::Build(std::move(objects), std::move(tables), {}).TakeValue();
  Query q;
  q.k = 10;
  q.radius = 0.3;
  q.keywords = {KeywordSet(8, {1, 2})};
  for (ScoreVariant v : {ScoreVariant::kRange, ScoreVariant::kInfluence,
                         ScoreVariant::kNearestNeighbor}) {
    q.variant = v;
    QueryResult stds = engine.Execute(q, Algorithm::kStds).TakeValue();
    QueryResult stps = engine.Execute(q, Algorithm::kStps).TakeValue();
    ASSERT_EQ(stds.entries.size(), 10u) << VariantName(v);
    ASSERT_EQ(stps.entries.size(), 10u) << VariantName(v);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(stds.entries[i].score, stds.entries[0].score, 1e-12);
      EXPECT_NEAR(stps.entries[i].score, stds.entries[0].score, 1e-9);
    }
  }
}

TEST(StressTest, DegenerateAllFeaturesIdentical) {
  // One location, one score, one keyword for every feature: the indexes
  // collapse to a single hot spot.
  std::vector<DataObject> objects;
  Rng rng(93);
  for (uint32_t i = 0; i < 100; ++i) {
    objects.push_back({i, {rng.Uniform(), rng.Uniform()}, ""});
  }
  std::vector<FeatureObject> features;
  for (uint32_t i = 0; i < 200; ++i) {
    features.push_back({i, {0.25, 0.25}, 0.8, KeywordSet(4, {0}), ""});
  }
  std::vector<FeatureTable> tables;
  tables.emplace_back(std::move(features), 4);
  std::vector<DataObject> objects_copy = objects;
  Engine engine = Engine::Build(std::move(objects), std::move(tables), {}).TakeValue();
  Query q;
  q.k = 5;
  q.radius = 0.1;
  q.keywords = {KeywordSet(4, {0})};
  QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
  // Objects within 0.1 of (0.25, 0.25) score 0.4 + 0.5 = ... Jaccard = 1.
  double expected_score = 0.5 * 0.8 + 0.5 * 1.0;
  size_t in_range = 0;
  for (const DataObject& o : objects_copy) {
    if (Distance(o.pos, {0.25, 0.25}) <= 0.1) ++in_range;
  }
  ASSERT_EQ(r.entries.size(), 5u);  // the virtual combination fills up
  for (size_t i = 0; i < std::min<size_t>(in_range, 5); ++i) {
    EXPECT_NEAR(r.entries[i].score, expected_score, 1e-12);
  }
  for (size_t i = std::min<size_t>(in_range, 5); i < 5; ++i) {
    EXPECT_EQ(r.entries[i].score, 0.0);
  }
}

TEST(StressTest, ManySmallQueriesStaysConsistent) {
  // 200 tiny queries with rotating parameters: deterministic I/O counts
  // and monotone score lists throughout.
  SyntheticConfig cfg;
  cfg.num_objects = 400;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 24;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 200;
  qcfg.k = 5;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    QueryResult a = engine.Execute(q, Algorithm::kStps).TakeValue();
    QueryResult b = engine.Execute(q, Algorithm::kStps).TakeValue();
    ASSERT_EQ(a.entries.size(), b.entries.size());
    EXPECT_EQ(a.stats.TotalReads(), b.stats.TotalReads());
    for (size_t i = 1; i < a.entries.size(); ++i) {
      EXPECT_GE(a.entries[i - 1].score, a.entries[i].score - 1e-12);
    }
  }
}

}  // namespace
}  // namespace stpq
