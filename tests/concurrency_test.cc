// Concurrency tests for the engine's thread-safe read path (DESIGN.md §11).
//
// The load-bearing guarantee: with the default cold_cache_per_query
// accounting, a parallel run over N threads produces byte-identical
// ResultEntry lists AND identical per-query page-read counters to a
// sequential run — concurrency must not perturb either the answers or the
// simulated-I/O cost model.  These tests are the ones the CI thread-
// sanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/cursor.h"
#include "core/engine.h"
#include "core/workload.h"
#include "gen/queries.h"
#include "gen/synthetic.h"

namespace stpq {
namespace {

Dataset MakeDataset(uint32_t objects = 2'000, uint32_t features = 1'500) {
  SyntheticConfig cfg;
  cfg.seed = 7;
  cfg.num_objects = objects;
  cfg.num_features_per_set = features;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 50;
  return GenerateSynthetic(cfg);
}

/// ~`count` queries cycling through all three score variants.
std::vector<Query> MixedWorkload(const Dataset& ds, uint32_t count) {
  std::vector<Query> out;
  QueryWorkloadConfig qcfg;
  qcfg.count = (count + 2) / 3;
  qcfg.radius = 0.03;
  uint64_t seed = 99;
  for (ScoreVariant v : {ScoreVariant::kRange, ScoreVariant::kInfluence,
                         ScoreVariant::kNearestNeighbor}) {
    qcfg.variant = v;
    qcfg.seed = seed++;  // distinct query centers per variant
    std::vector<Query> qs = GenerateQueries(ds, qcfg);
    out.insert(out.end(), qs.begin(), qs.end());
  }
  return out;
}

void ExpectIdentical(const QueryResult& seq, const QueryResult& par,
                     size_t query_index) {
  ASSERT_EQ(seq.entries.size(), par.entries.size()) << "query " << query_index;
  for (size_t r = 0; r < seq.entries.size(); ++r) {
    EXPECT_EQ(seq.entries[r].object, par.entries[r].object)
        << "query " << query_index << " rank " << r;
    // Exact bit equality, not EXPECT_NEAR: the parallel run executes the
    // same code over the same immutable indexes.
    EXPECT_EQ(seq.entries[r].score, par.entries[r].score)
        << "query " << query_index << " rank " << r;
  }
  EXPECT_EQ(seq.stats.object_index_reads, par.stats.object_index_reads)
      << "query " << query_index;
  EXPECT_EQ(seq.stats.feature_index_reads, par.stats.feature_index_reads)
      << "query " << query_index;
}

// The acceptance test: 200 mixed-variant queries, sequential vs 8 threads.
TEST(ConcurrencyTest, ParallelRunMatchesSequentialExactly) {
  Dataset ds = MakeDataset();
  std::vector<Query> queries = MixedWorkload(ds, 200);
  ASSERT_GE(queries.size(), 200u);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();

  std::vector<QueryResult> sequential;
  sequential.reserve(queries.size());
  for (const Query& q : queries) {
    sequential.push_back(engine.Execute(q, Algorithm::kStps).TakeValue());
  }

  ParallelWorkloadRunner runner(&engine);
  ParallelWorkloadOptions opts;
  opts.threads = 8;
  Result<ParallelWorkloadReport> report = runner.Run(queries, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ParallelWorkloadReport& r = report.value();

  ASSERT_EQ(r.per_query.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ExpectIdentical(sequential[i], r.per_query[i], i);
  }
  EXPECT_GT(r.queries_per_sec, 0.0);
  // The sink-aggregated counters equal the per-query sum.
  uint64_t reads = 0;
  for (const QueryResult& q : r.per_query) reads += q.stats.TotalReads();
  EXPECT_EQ(r.summary.aggregate.TotalReads(), reads);
}

// Both algorithms interleaved on raw threads: each thread owns a disjoint
// slice and checks against the sequential reference in place.
TEST(ConcurrencyTest, MixedAlgorithmsOnRawThreads) {
  Dataset ds = MakeDataset(1'000, 800);
  std::vector<Query> queries = MixedWorkload(ds, 48);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();

  std::vector<QueryResult> seq_stds, seq_stps;
  for (const Query& q : queries) {
    seq_stds.push_back(engine.Execute(q, Algorithm::kStds).TakeValue());
    seq_stps.push_back(engine.Execute(q, Algorithm::kStps).TakeValue());
  }

  std::atomic<size_t> next{0};
  auto worker = [&](Algorithm alg, const std::vector<QueryResult>& expect) {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= queries.size()) return;
      QueryResult r = engine.Execute(queries[i], alg).TakeValue();
      ExpectIdentical(expect[i], r, i);
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back(worker, Algorithm::kStds, std::cref(seq_stds));
    pool.emplace_back(worker, Algorithm::kStps, std::cref(seq_stps));
  }
  // Both algorithm flavors drain the same claim counter, so some queries
  // run under STDS and some under STPS — the point is the interleaving,
  // not full coverage of either; the first loop already verified both.
  for (std::thread& t : pool) t.join();
}

// A cursor owns its execution session: it stays valid after the opening
// query's scope is gone, can be drained from a different thread, and can
// be drained while other queries execute concurrently.
TEST(ConcurrencyTest, CursorOutlivesQueryAndMovesThreads) {
  Dataset ds = MakeDataset(1'000, 800);
  QueryWorkloadConfig qcfg;
  qcfg.count = 4;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();

  // Sequential reference stream per query.
  std::vector<std::vector<ResultEntry>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    std::unique_ptr<StpsCursor> c = engine.OpenCursor(queries[i]).TakeValue();
    while (auto e = c->Next()) expected[i].push_back(*e);
  }

  // Open all cursors on this thread, then hand each to its own thread and
  // drain them concurrently with a background Execute load.
  std::vector<std::unique_ptr<StpsCursor>> cursors;
  for (const Query& q : queries) {
    cursors.push_back(engine.OpenCursor(q).TakeValue());
  }
  std::atomic<bool> stop{false};
  std::thread load([&]() {
    while (!stop.load()) {
      QueryResult r = engine.Execute(queries[0], Algorithm::kStps).TakeValue();
      (void)r;
    }
  });
  std::vector<std::thread> drainers;
  for (size_t i = 0; i < cursors.size(); ++i) {
    drainers.emplace_back([&, i]() {
      size_t rank = 0;
      while (auto e = cursors[i]->Next()) {
        ASSERT_LT(rank, expected[i].size()) << "cursor " << i;
        EXPECT_EQ(e->object, expected[i][rank].object)
            << "cursor " << i << " rank " << rank;
        EXPECT_EQ(e->score, expected[i][rank].score)
            << "cursor " << i << " rank " << rank;
        ++rank;
      }
      EXPECT_EQ(rank, expected[i].size()) << "cursor " << i;
      // I/O was charged to the cursor's own session.
      EXPECT_GT(cursors[i]->stats().TotalReads(), 0u) << "cursor " << i;
    });
  }
  for (std::thread& t : drainers) t.join();
  stop.store(true);
  load.join();
}

// Warm shared-pool mode: counters depend on interleaving (hits vs misses),
// but results must not, and the mutex-protected pool must be TSan-clean.
TEST(ConcurrencyTest, WarmSharedPoolKeepsResultsCorrect) {
  Dataset ds = MakeDataset(1'000, 800);
  std::vector<Query> queries = MixedWorkload(ds, 60);
  EngineOptions opts;
  opts.cold_cache_per_query = false;
  opts.storage.pool_capacity = 64;  // force eviction churn under contention
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();

  std::vector<std::vector<ResultEntry>> expected;
  for (const Query& q : queries) {
    expected.push_back(engine.Execute(q, Algorithm::kStps).TakeValue().entries);
  }

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= queries.size()) return;
      QueryResult r = engine.Execute(queries[i], Algorithm::kStps).TakeValue();
      ASSERT_EQ(r.entries.size(), expected[i].size()) << "query " << i;
      for (size_t k = 0; k < r.entries.size(); ++k) {
        EXPECT_EQ(r.entries[k].object, expected[i][k].object);
        EXPECT_EQ(r.entries[k].score, expected[i][k].score);
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

// The shared Voronoi cell cache under concurrent NN queries: first writer
// wins on identical cells, results stay correct.
TEST(ConcurrencyTest, SharedVoronoiCacheUnderConcurrentNnQueries) {
  Dataset ds = MakeDataset(1'000, 800);
  QueryWorkloadConfig qcfg;
  qcfg.count = 24;
  qcfg.variant = ScoreVariant::kNearestNeighbor;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions opts;
  opts.reuse_voronoi_cells = true;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();

  // Reference from an identically-built engine with a private cold cache.
  Dataset ds2 = MakeDataset(1'000, 800);
  Engine reference = Engine::Build(ds2.objects, std::move(ds2.feature_tables), {}).TakeValue();
  std::vector<std::vector<ResultEntry>> expected;
  for (const Query& q : queries) {
    expected.push_back(
        reference.Execute(q, Algorithm::kStps).TakeValue().entries);
  }

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= queries.size()) return;
      QueryResult r = engine.Execute(queries[i], Algorithm::kStps).TakeValue();
      ASSERT_EQ(r.entries.size(), expected[i].size()) << "query " << i;
      for (size_t k = 0; k < r.entries.size(); ++k) {
        EXPECT_EQ(r.entries[k].object, expected[i][k].object);
        EXPECT_EQ(r.entries[k].score, expected[i][k].score);
      }
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  EXPECT_GT(engine.voronoi_cache()->size(), 0u);

  // Second pass over the same workload is served from the cache.
  QueryResult again = engine.Execute(queries[0], Algorithm::kStps).TakeValue();
  EXPECT_GT(again.stats.voronoi_cache_hits, 0u);
}

// Thread-count sweep: every N yields the same per-query counters (the
// bench_parallel_throughput invariant).
TEST(ConcurrencyTest, CountersIndependentOfThreadCount) {
  Dataset ds = MakeDataset(1'000, 800);
  std::vector<Query> queries = MixedWorkload(ds, 30);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  ParallelWorkloadRunner runner(&engine);

  ParallelWorkloadOptions opts;
  opts.threads = 1;
  ParallelWorkloadReport base = runner.Run(queries, opts).TakeValue();
  for (size_t threads : {2u, 4u, 8u}) {
    opts.threads = threads;
    ParallelWorkloadReport r = runner.Run(queries, opts).TakeValue();
    ASSERT_EQ(r.per_query.size(), base.per_query.size());
    for (size_t i = 0; i < base.per_query.size(); ++i) {
      ExpectIdentical(base.per_query[i], r.per_query[i], i);
    }
  }
}

// Validation short-circuits the whole batch: nothing executes.
TEST(ConcurrencyTest, RunnerRejectsMalformedBatch) {
  Dataset ds = MakeDataset(500, 400);
  std::vector<Query> queries = MixedWorkload(ds, 10);
  queries[3].k = 0;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  ParallelWorkloadRunner runner(&engine);
  Result<ParallelWorkloadReport> r = runner.Run(queries, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("query 3"), std::string::npos)
      << r.status().message();
}

}  // namespace
}  // namespace stpq
