// Cross-module integration tests: full engine runs on generated workloads,
// SRT/IR2 result equality, variant relationships, and larger randomized
// agreement sweeps than the per-module tests.
#include <gtest/gtest.h>

#include <map>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/score.h"
#include "gen/queries.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"

namespace stpq {
namespace {

std::vector<const FeatureTable*> TablePtrs(const Dataset& ds) {
  std::vector<const FeatureTable*> out;
  for (const FeatureTable& t : ds.feature_tables) out.push_back(&t);
  return out;
}

void ExpectSameScores(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].score, want[i].score, 1e-9) << label << " rank " << i;
  }
}

TEST(IntegrationTest, SrtAndIr2ReturnIdenticalResults) {
  // The index is a performance choice, never a correctness one.
  SyntheticConfig cfg;
  cfg.num_objects = 1500;
  cfg.num_features_per_set = 1200;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 48;
  cfg.num_clusters = 120;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 8;
  qcfg.radius = 0.04;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions srt_opts;
  srt_opts.index_kind = FeatureIndexKind::kSrt;
  EngineOptions ir2_opts;
  ir2_opts.index_kind = FeatureIndexKind::kIr2;
  Engine srt = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
             srt_opts).TakeValue();
  Engine ir2 = Engine::Build(ds.objects, std::move(ds.feature_tables), ir2_opts).TakeValue();
  for (const Query& q : queries) {
    ExpectSameScores(srt.Execute(q, Algorithm::kStps).TakeValue().entries, ir2.Execute(q, Algorithm::kStps).TakeValue().entries,
                     "SRT vs IR2");
  }
}

TEST(IntegrationTest, PullingStrategiesReturnIdenticalResults) {
  SyntheticConfig cfg;
  cfg.num_objects = 800;
  cfg.num_features_per_set = 600;
  cfg.num_feature_sets = 3;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 80;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 6;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions pri;
  pri.pulling = PullingStrategy::kPrioritized;
  EngineOptions rr;
  rr.pulling = PullingStrategy::kRoundRobin;
  Engine a = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables), pri).TakeValue();
  Engine b = Engine::Build(ds.objects, std::move(ds.feature_tables), rr).TakeValue();
  for (const Query& q : queries) {
    ExpectSameScores(a.Execute(q, Algorithm::kStps).TakeValue().entries, b.Execute(q, Algorithm::kStps).TakeValue().entries,
                     "pulling strategies");
  }
}

TEST(IntegrationTest, RealLikeWorkloadAllVariantsAgreeWithBruteForce) {
  RealLikeConfig cfg;
  cfg.scale = 0.02;  // 500 hotels, 1580 restaurants, 600 cafes
  Dataset ds = GenerateRealLike(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                {}).TakeValue();
  for (ScoreVariant variant :
       {ScoreVariant::kRange, ScoreVariant::kInfluence,
        ScoreVariant::kNearestNeighbor}) {
    QueryWorkloadConfig qcfg;
    qcfg.count = 4;
    qcfg.radius = 0.02;
    qcfg.variant = variant;
    std::vector<Query> queries = GenerateQueries(ds, qcfg);
    for (const Query& q : queries) {
      std::vector<ResultEntry> expected = brute.TopK(q);
      ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, expected,
                       std::string("STDS ") + VariantName(variant));
      ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected,
                       std::string("STPS ") + VariantName(variant));
    }
  }
}

TEST(IntegrationTest, FiveFeatureSets) {
  // The paper sweeps c up to 5 (Table 2).
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 5;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 40;
  cfg.cluster_stddev = 0.02;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.radius = 0.06;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    std::vector<ResultEntry> expected = brute.TopK(q);
    ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, expected, "STDS c=5");
    ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "STPS c=5");
  }
}

TEST(IntegrationTest, RangeScoreDominatesInfluenceScore) {
  // For identical queries, influence scores are <= 2^0-weighted range-style
  // maxima but relative ranking may differ; here we just sanity-check both
  // pipelines run and return monotone score lists.
  SyntheticConfig cfg;
  cfg.num_objects = 500;
  cfg.num_features_per_set = 400;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  for (Query q : queries) {
    for (ScoreVariant v : {ScoreVariant::kRange, ScoreVariant::kInfluence,
                           ScoreVariant::kNearestNeighbor}) {
      q.variant = v;
      QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
      for (size_t i = 1; i < r.entries.size(); ++i) {
        EXPECT_GE(r.entries[i - 1].score, r.entries[i].score - 1e-12)
            << VariantName(v);
      }
      // tau(p) is a sum over c in-[0,1] components.
      for (const ResultEntry& e : r.entries) {
        EXPECT_GE(e.score, 0.0);
        EXPECT_LE(e.score, 2.0 + 1e-12);
      }
    }
  }
}

TEST(IntegrationTest, SmallBufferPoolStillCorrect) {
  SyntheticConfig cfg;
  cfg.num_objects = 1000;
  cfg.num_features_per_set = 800;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.radius = 0.04;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions opts;
  opts.storage.pool_capacity = 8;  // pathologically small LRU
  opts.cold_cache_per_query = false;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  for (const Query& q : queries) {
    ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, brute.TopK(q),
                     "tiny pool");
  }
}

TEST(IntegrationTest, SmallPageSizeDeepTreesStillCorrect) {
  SyntheticConfig cfg;
  cfg.num_objects = 600;
  cfg.num_features_per_set = 500;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions opts;
  opts.storage.page_size = 256;  // fan-out floors at 4: deep trees
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  for (const Query& q : queries) {
    ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, brute.TopK(q),
                     "deep trees");
  }
}

TEST(IntegrationTest, ResultEntriesCarryValidObjectIds) {
  SyntheticConfig cfg;
  cfg.num_objects = 400;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 2;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 2;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  for (const Query& q : queries) {
    QueryResult r = engine.Execute(q, Algorithm::kStps).TakeValue();
    std::set<ObjectId> seen;
    for (const ResultEntry& e : r.entries) {
      EXPECT_LT(e.object, engine.objects().size());
      EXPECT_TRUE(seen.insert(e.object).second) << "duplicate object";
    }
  }
}

}  // namespace
}  // namespace stpq
