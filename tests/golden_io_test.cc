// Golden I/O regression test: page-read counts for the paper-example
// workloads (and one bounded shared-pool workload whose hit/miss split
// pins the exact LRU eviction order) are checked against constants
// captured before the buffer-pool rewrite and the keyword-signature fast
// paths.  The hot-path optimizations must change no query result and no
// I/O accounting, so these counts are byte-identical by design.
//
// To re-capture after an *intentional* I/O-behavior change, run with
// STPQ_GOLDEN_PRINT=1 and paste the printed tables over the constants.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "gen/synthetic.h"
#include "paper_example.h"
#include "util/rng.h"

namespace stpq {
namespace {

struct GoldenRow {
  const char* index;    // "SRT" / "IR2"
  const char* algo;     // "STDS" / "STPS"
  const char* variant;  // "range" / "influence" / "nn"
  uint64_t object_reads;
  uint64_t feature_reads;
  uint64_t buffer_hits;

  bool operator==(const GoldenRow& other) const {
    return object_reads == other.object_reads &&
           feature_reads == other.feature_reads &&
           buffer_hits == other.buffer_hits;
  }
};

const char* VariantName(ScoreVariant v) {
  switch (v) {
    case ScoreVariant::kRange:
      return "range";
    case ScoreVariant::kInfluence:
      return "influence";
    case ScoreVariant::kNearestNeighbor:
      return "nn";
  }
  return "?";
}

void PrintRows(const char* label, const std::vector<GoldenRow>& rows) {
  std::fprintf(stderr, "// %s\n", label);
  for (const GoldenRow& r : rows) {
    std::fprintf(stderr, "    {\"%s\", \"%s\", \"%s\", %llu, %llu, %llu},\n",
                 r.index, r.algo, r.variant,
                 static_cast<unsigned long long>(r.object_reads),
                 static_cast<unsigned long long>(r.feature_reads),
                 static_cast<unsigned long long>(r.buffer_hits));
  }
}

bool GoldenPrintMode() {
  return std::getenv("STPQ_GOLDEN_PRINT") != nullptr;
}

/// Paper-example matrix: every (index, algorithm, variant) combination on
/// the Section 3 tourist query, cold isolated session per query (the
/// default), small pages so the trees have real depth.
std::vector<GoldenRow> RunPaperMatrix() {
  std::vector<GoldenRow> rows;
  Vocabulary rv = testing_example::RestaurantVocab();
  Vocabulary cv = testing_example::CafeVocab();
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kSrt, FeatureIndexKind::kIr2}) {
    Dataset ds = testing_example::ExampleDataset();
    EngineOptions opts;
    opts.index_kind = kind;
    opts.storage.page_size = 128;
    Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), opts).TakeValue();
    for (Algorithm algo : {Algorithm::kStds, Algorithm::kStps}) {
      for (ScoreVariant variant :
           {ScoreVariant::kRange, ScoreVariant::kInfluence,
            ScoreVariant::kNearestNeighbor}) {
        Query q = testing_example::TouristQuery(rv, cv);
        q.variant = variant;
        Result<QueryResult> result = engine.Execute(q, algo);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (!result.ok()) return rows;
        const QueryStats& stats = result.value().stats;
        rows.push_back({kind == FeatureIndexKind::kSrt ? "SRT" : "IR2",
                        algo == Algorithm::kStds ? "STDS" : "STPS",
                        VariantName(variant), stats.object_index_reads,
                        stats.feature_index_reads, stats.buffer_hits});
      }
    }
  }
  return rows;
}

/// Bounded shared-pool workload: 32-page pools kept warm across a mixed
/// query stream, so the cumulative reads/hits split depends on the exact
/// LRU eviction order (any reordering in the rewritten pool shows up
/// here even if single-query cold counts survive).
std::vector<GoldenRow> RunSharedPoolWorkload() {
  std::vector<GoldenRow> rows;
  SyntheticConfig cfg;
  cfg.seed = 77;
  cfg.num_objects = 1000;
  cfg.num_features_per_set = 1000;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 64;
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kSrt, FeatureIndexKind::kIr2}) {
    Dataset ds = GenerateSynthetic(cfg);
    EngineOptions opts;
    opts.index_kind = kind;
    opts.storage.page_size = 256;
    opts.storage.pool_capacity = 32;
    opts.cold_cache_per_query = false;
    Engine engine = Engine::Build(std::move(ds.objects), std::move(ds.feature_tables), opts).TakeValue();
    Rng rng(99);
    QueryStats total;
    for (int i = 0; i < 40; ++i) {
      Query q;
      q.k = 5;
      q.radius = 0.05;
      q.lambda = 0.5;
      for (uint32_t s = 0; s < cfg.num_feature_sets; ++s) {
        KeywordSet kw(cfg.vocabulary_size);
        kw.Insert(
            static_cast<TermId>(rng.UniformInt(0, cfg.vocabulary_size - 1)));
        kw.Insert(
            static_cast<TermId>(rng.UniformInt(0, cfg.vocabulary_size - 1)));
        q.keywords.push_back(std::move(kw));
      }
      q.variant = (i % 8 == 5)   ? ScoreVariant::kInfluence
                  : (i % 8 == 7) ? ScoreVariant::kNearestNeighbor
                                 : ScoreVariant::kRange;
      Algorithm algo = (i % 4 == 3) ? Algorithm::kStds : Algorithm::kStps;
      Result<QueryResult> result = engine.Execute(q, algo);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) return rows;
      total += result.value().stats;
    }
    rows.push_back({kind == FeatureIndexKind::kSrt ? "SRT" : "IR2", "mixed",
                    "warm40", total.object_index_reads,
                    total.feature_index_reads, total.buffer_hits});
  }
  return rows;
}

void ExpectRowsMatch(const std::vector<GoldenRow>& expected,
                     const std::vector<GoldenRow>& actual, const char* label) {
  ASSERT_EQ(expected.size(), actual.size());
  bool all_match = true;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i] == actual[i], true)
        << label << " row " << i << " (" << actual[i].index << "/"
        << actual[i].algo << "/" << actual[i].variant << "): expected "
        << expected[i].object_reads << "/" << expected[i].feature_reads << "/"
        << expected[i].buffer_hits << " (object reads / feature reads / "
        << "hits), got " << actual[i].object_reads << "/"
        << actual[i].feature_reads << "/" << actual[i].buffer_hits;
    all_match = all_match && expected[i] == actual[i];
  }
  if (!all_match) PrintRows(label, actual);
}

// Captured on the pre-rewrite seed (std::list LRU pool, no keyword
// signatures); the optimizations must reproduce them exactly.
const std::vector<GoldenRow>& ExpectedPaperMatrix() {
  static const std::vector<GoldenRow> kRows = {
      {"SRT", "STDS", "range", 4, 5, 6},
      {"SRT", "STDS", "influence", 4, 5, 33},
      {"SRT", "STDS", "nn", 4, 5, 35},
      {"SRT", "STPS", "range", 2, 5, 0},
      {"SRT", "STPS", "influence", 3, 5, 24},
      {"SRT", "STPS", "nn", 2, 5, 10},
      {"IR2", "STDS", "range", 4, 5, 6},
      {"IR2", "STDS", "influence", 4, 5, 33},
      {"IR2", "STDS", "nn", 4, 5, 33},
      {"IR2", "STPS", "range", 2, 5, 0},
      {"IR2", "STPS", "influence", 3, 5, 24},
      {"IR2", "STPS", "nn", 2, 5, 10},
  };
  return kRows;
}

const std::vector<GoldenRow>& ExpectedSharedPool() {
  static const std::vector<GoldenRow> kRows = {
      {"SRT", "mixed", "warm40", 3632, 83187, 139311},
      {"IR2", "mixed", "warm40", 3632, 18716, 112042},
  };
  return kRows;
}

TEST(GoldenIoTest, PaperExampleMatrix) {
  std::vector<GoldenRow> actual = RunPaperMatrix();
  if (GoldenPrintMode()) {
    PrintRows("PaperExampleMatrix", actual);
    GTEST_SKIP() << "golden print mode";
  }
  ExpectRowsMatch(ExpectedPaperMatrix(), actual, "PaperExampleMatrix");
}

/// The paper-example matrix re-run on file-backed engines: each engine is
/// built, saved to a .stpqx file, reopened through Engine::Open (so every
/// buffer-pool miss is a real FilePageStore fetch), and the same golden
/// constants must hold byte-for-byte.  This is the cross-backend contract:
/// switching the storage backend changes where pages come from, never how
/// many are read.
std::vector<GoldenRow> RunPaperMatrixFileBacked() {
  std::vector<GoldenRow> rows;
  Vocabulary rv = testing_example::RestaurantVocab();
  Vocabulary cv = testing_example::CafeVocab();
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("stpq_golden_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kSrt, FeatureIndexKind::kIr2}) {
    Dataset ds = testing_example::ExampleDataset();
    EngineOptions opts;
    opts.index_kind = kind;
    opts.storage.page_size = 128;
    Engine built = Engine::Build(std::move(ds.objects),
                                 std::move(ds.feature_tables), opts)
                       .TakeValue();
    std::string path = (dir / "golden.stpqx").string();
    Status saved = built.Save(path);
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    Result<Engine> reopened = Engine::Open(path);
    EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
    if (!saved.ok() || !reopened.ok()) break;
    const Engine& engine = reopened.value();
    EXPECT_EQ(engine.page_store().backend(), StorageBackend::kFile);
    for (Algorithm algo : {Algorithm::kStds, Algorithm::kStps}) {
      for (ScoreVariant variant :
           {ScoreVariant::kRange, ScoreVariant::kInfluence,
            ScoreVariant::kNearestNeighbor}) {
        Query q = testing_example::TouristQuery(rv, cv);
        q.variant = variant;
        Result<QueryResult> result = engine.Execute(q, algo);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (!result.ok()) return rows;
        const QueryStats& stats = result.value().stats;
        rows.push_back({kind == FeatureIndexKind::kSrt ? "SRT" : "IR2",
                        algo == Algorithm::kStds ? "STDS" : "STPS",
                        VariantName(variant), stats.object_index_reads,
                        stats.feature_index_reads, stats.buffer_hits});
      }
    }
    // A reopened engine really serves misses from the file.
    EXPECT_GT(engine.page_store().stats().fetches, 0u);
  }
  std::filesystem::remove_all(dir);
  return rows;
}

TEST(GoldenIoTest, PaperExampleMatrixFileBacked) {
  std::vector<GoldenRow> actual = RunPaperMatrixFileBacked();
  if (GoldenPrintMode()) {
    PrintRows("PaperExampleMatrixFileBacked", actual);
    GTEST_SKIP() << "golden print mode";
  }
  // Same constants as the simulated backend: the storage backend must not
  // change a single page-read count.
  ExpectRowsMatch(ExpectedPaperMatrix(), actual,
                  "PaperExampleMatrixFileBacked");
}

TEST(GoldenIoTest, SharedPoolWorkload) {
  std::vector<GoldenRow> actual = RunSharedPoolWorkload();
  if (GoldenPrintMode()) {
    PrintRows("SharedPoolWorkload", actual);
    GTEST_SKIP() << "golden print mode";
  }
  ExpectRowsMatch(ExpectedSharedPool(), actual, "SharedPoolWorkload");
}

}  // namespace
}  // namespace stpq
