// Tests for debug/validate.h: every deep validator accepts freshly built
// structures and names the violated invariant after deliberate corruption.
// The negative tests corrupt internals through the *_for_test accessors and
// expect a descriptive non-OK Status — never a crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <filesystem>

#include "core/engine.h"
#include "debug/validate.h"
#include "gen/synthetic.h"
#include "hilbert/keyword_hilbert.h"
#include "index/ir2_tree.h"
#include "index/object_index.h"
#include "index/srt_index.h"
#include "storage/buffer_pool.h"
#include "text/inverted_index.h"

namespace stpq {
namespace {

/// Small clustered dataset; page_size 512 keeps the fan-out low so the
/// trees have real internal levels at a few hundred records.
Dataset MakeDataset() {
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 24;
  cfg.num_clusters = 40;
  return GenerateSynthetic(cfg);
}

FeatureIndexOptions SmallPages() {
  FeatureIndexOptions opts;
  opts.page_size_bytes = 512;
  return opts;
}

/// Id of the leftmost leaf node.
template <int D, typename Aug>
NodeId FirstLeaf(const RTree<D, Aug>& tree) {
  NodeId nid = tree.root_id();
  while (!tree.PeekNode(nid).IsLeaf()) {
    nid = tree.PeekNode(nid).entries.front().id;
  }
  return nid;
}

// ----------------------------------------------------------- positive paths

TEST(SrtValidatorTest, AcceptsEveryBuildKind) {
  Dataset ds = MakeDataset();
  for (BulkLoadKind kind :
       {BulkLoadKind::kHilbert, BulkLoadKind::kStr, BulkLoadKind::kInsert}) {
    FeatureIndexOptions opts = SmallPages();
    opts.bulk_load = kind;
    SrtIndex index(&ds.feature_tables[0], opts);
    Status st = ValidateSrtIndex(index);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

TEST(Ir2ValidatorTest, AcceptsEveryBuildKind) {
  Dataset ds = MakeDataset();
  for (BulkLoadKind kind :
       {BulkLoadKind::kHilbert, BulkLoadKind::kStr, BulkLoadKind::kInsert}) {
    FeatureIndexOptions opts = SmallPages();
    opts.bulk_load = kind;
    Ir2Tree index(&ds.feature_tables[0], opts);
    Status st = ValidateIr2Tree(index);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

TEST(ObjectIndexValidatorTest, AcceptsFreshIndex) {
  Dataset ds = MakeDataset();
  ObjectIndexOptions opts;
  opts.page_size_bytes = 512;
  ObjectIndex index(&ds.objects, opts);
  ASSERT_GE(index.tree().height(), 2u);  // corruption tests need depth
  Status st = ValidateObjectIndex(index);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(RTreeValidatorTest, AcceptsInsertDeleteChurn) {
  RTreeOptions opts;
  opts.max_entries = 4;
  RTree<2> tree(opts);
  std::vector<Rect2> rects;
  for (uint32_t i = 0; i < 60; ++i) {
    double x = 0.01 * i, y = 0.02 * (i % 7);
    rects.push_back(MakeRect2(x, y, x + 0.005, y + 0.005));
    tree.Insert(rects.back(), i);
  }
  for (uint32_t i = 0; i < 60; i += 3) {
    ASSERT_TRUE(tree.Delete(rects[i], i));
  }
  Status st = ValidateRTree<2, NoAug>(tree);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(InvertedIndexValidatorTest, AcceptsFreshIndex) {
  Dataset ds = MakeDataset();
  std::vector<KeywordSet> corpus;
  for (const FeatureObject& f : ds.feature_tables[0].All()) {
    corpus.push_back(f.keywords);
  }
  InvertedIndex idx = InvertedIndex::Build(24, corpus);
  Status st = ValidateInvertedIndex(idx, corpus);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// --------------------------------------------------- R-tree structure faults

TEST(RTreeValidatorTest, DetectsLooseParentMbr) {
  Dataset ds = MakeDataset();
  ObjectIndexOptions opts;
  opts.page_size_bytes = 512;
  ObjectIndex index(&ds.objects, opts);
  auto& root = index.mutable_tree_for_test().MutableNodeForTest(
      index.tree().root_id());
  root.entries[0].rect.hi[0] += 0.25;
  Status st = ValidateObjectIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("union"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("root"), std::string::npos) << st.ToString();
}

TEST(RTreeValidatorTest, DetectsSharedSubtree) {
  Dataset ds = MakeDataset();
  ObjectIndexOptions opts;
  opts.page_size_bytes = 512;
  ObjectIndex index(&ds.objects, opts);
  auto& root = index.mutable_tree_for_test().MutableNodeForTest(
      index.tree().root_id());
  ASSERT_GE(root.entries.size(), 2u);
  root.entries[1] = root.entries[0];  // two entries now share one child
  Status st = ValidateObjectIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("two paths"), std::string::npos)
      << st.ToString();
}

TEST(RTreeValidatorTest, DetectsLeafRecordBijectionBreak) {
  Dataset ds = MakeDataset();
  ObjectIndexOptions opts;
  opts.page_size_bytes = 512;
  ObjectIndex index(&ds.objects, opts);
  NodeId leaf = FirstLeaf(index.tree());
  auto& node = index.mutable_tree_for_test().MutableNodeForTest(leaf);
  ASSERT_GE(node.entries.size(), 2u);
  // Overwrite an entry strictly inside the leaf MBR with a copy of entry 0
  // (id and rect together): the parent MBR stays exact and every entry
  // still matches its object, so the duplicated id is the only fault left.
  Rect2 mbr = node.entries.front().rect;
  for (const auto& e : node.entries) mbr.Enlarge(e.rect);
  size_t victim = 0;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    const Rect2& r = node.entries[i].rect;
    if (r.lo[0] > mbr.lo[0] && r.hi[0] < mbr.hi[0] && r.lo[1] > mbr.lo[1] &&
        r.hi[1] < mbr.hi[1]) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, 0u) << "no interior leaf entry to corrupt";
  node.entries[victim] = node.entries[0];
  Status st = ValidateObjectIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("appears"), std::string::npos) << st.ToString();
}

// ------------------------------------------------------- SRT-specific faults

TEST(SrtValidatorTest, DetectsScoreBoundViolation) {
  Dataset ds = MakeDataset();
  SrtIndex index(&ds.feature_tables[0], SmallPages());
  ASSERT_GE(index.tree().height(), 2u);
  auto& root = index.mutable_tree_for_test().MutableNodeForTest(
      index.tree().root_id());
  root.entries[0].aug.max_score = -1.0;  // no longer an upper bound
  Status st = ValidateSrtIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dominate"), std::string::npos)
      << st.ToString();
}

TEST(SrtValidatorTest, DetectsKeywordSupersetViolation) {
  Dataset ds = MakeDataset();
  SrtIndex index(&ds.feature_tables[0], SmallPages());
  ASSERT_GE(index.tree().height(), 2u);
  auto& root = index.mutable_tree_for_test().MutableNodeForTest(
      index.tree().root_id());
  // Consistently empty keyword summary: the entry is self-consistent but no
  // longer covers its descendants.
  KeywordSet empty(ds.feature_tables[0].universe_size());
  root.entries[0].aug.keyword_hilbert = EncodeKeywords(empty);
  root.entries[0].aug.keywords = empty;
  Status st = ValidateSrtIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("superset"), std::string::npos)
      << st.ToString();
}

TEST(SrtValidatorTest, DetectsStaleKeywordCache) {
  Dataset ds = MakeDataset();
  SrtIndex index(&ds.feature_tables[0], SmallPages());
  auto& root = index.mutable_tree_for_test().MutableNodeForTest(
      index.tree().root_id());
  // Decoded cache drifts from the stored Hilbert value.
  root.entries[0].aug.keywords =
      KeywordSet(ds.feature_tables[0].universe_size());
  Status st = ValidateSrtIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("stale"), std::string::npos) << st.ToString();
}

TEST(SrtValidatorTest, DetectsHilbertLeafOrderViolation) {
  Dataset ds = MakeDataset();
  SrtIndex index(&ds.feature_tables[0], SmallPages());
  ASSERT_EQ(index.build_kind(), BulkLoadKind::kHilbert);
  NodeId leaf = FirstLeaf(index.tree());
  auto& node = index.mutable_tree_for_test().MutableNodeForTest(leaf);
  ASSERT_GE(node.entries.size(), 2u);
  std::swap(node.entries.front(), node.entries.back());
  Status st = ValidateSrtIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Hilbert"), std::string::npos)
      << st.ToString();
}

TEST(SrtValidatorTest, DetectsLeafTableMismatch) {
  Dataset ds = MakeDataset();
  SrtIndex index(&ds.feature_tables[0], SmallPages());
  NodeId leaf = FirstLeaf(index.tree());
  auto& node = index.mutable_tree_for_test().MutableNodeForTest(leaf);
  // Lowering the cached score cannot trip the dominance check on the way
  // down, so the leaf/table comparison is what must catch it.
  node.entries[0].aug.max_score = -0.5;
  Status st = ValidateSrtIndex(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("feature score"), std::string::npos)
      << st.ToString();
}

// ------------------------------------------------------- IR2-specific faults

TEST(Ir2ValidatorTest, DetectsSignatureCoverageViolation) {
  Dataset ds = MakeDataset();
  Ir2Tree index(&ds.feature_tables[0], SmallPages());
  ASSERT_GE(index.tree().height(), 2u);
  auto& root = index.mutable_tree_for_test().MutableNodeForTest(
      index.tree().root_id());
  // All-zero signature: structurally valid width but covers nothing, which
  // would make queries silently skip matching subtrees.
  root.entries[0].aug.signature = Signature(index.scheme().signature_bits());
  Status st = ValidateIr2Tree(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cover"), std::string::npos) << st.ToString();
}

TEST(Ir2ValidatorTest, DetectsLeafSignatureMismatch) {
  Dataset ds = MakeDataset();
  Ir2Tree index(&ds.feature_tables[0], SmallPages());
  NodeId leaf = FirstLeaf(index.tree());
  auto& node = index.mutable_tree_for_test().MutableNodeForTest(leaf);
  node.entries[0].aug.signature = Signature(index.scheme().signature_bits());
  Status st = ValidateIr2Tree(index);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("signature"), std::string::npos)
      << st.ToString();
}

// --------------------------------------------------- inverted index faults

TEST(InvertedIndexValidatorTest, DetectsUnsortedPostings) {
  std::vector<KeywordSet> corpus = {KeywordSet(4, {0}), KeywordSet(4, {0, 1}),
                                    KeywordSet(4, {1})};
  InvertedIndex idx = InvertedIndex::Build(4, corpus);
  auto& postings = idx.mutable_postings_for_test();
  ASSERT_GE(postings.size(), 2u);
  std::swap(postings[0], postings[1]);  // term 0's list becomes [1, 0]
  Status st = ValidateInvertedIndex(idx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("increasing"), std::string::npos)
      << st.ToString();
}

TEST(InvertedIndexValidatorTest, DetectsPhantomPosting) {
  std::vector<KeywordSet> corpus = {KeywordSet(4, {0}), KeywordSet(4, {0, 1}),
                                    KeywordSet(4, {1})};
  InvertedIndex idx = InvertedIndex::Build(4, corpus);
  // Term 0's postings become [0, 2]; document 2 does not contain term 0.
  idx.mutable_postings_for_test()[1] = 2;
  Status st = ValidateInvertedIndex(idx, corpus);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("phantom"), std::string::npos)
      << st.ToString();
}

// ------------------------------------------------------- buffer pool faults

TEST(BufferPoolValidatorTest, AcceptsHealthyPool) {
  BufferPool pool(4);
  for (PageId p = 0; p < 10; ++p) pool.Access(p);
  ASSERT_TRUE(pool.Pin(9).ok());
  Status st = ValidateBufferPool(pool);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(pool.Unpin(9).ok());
}

TEST(BufferPoolValidatorTest, DetectsBrokenPageTable) {
  BufferPool pool(4);
  pool.Access(1);
  pool.Access(2);
  BufferPool::Corrupter::DropTableEntry(&pool, 1);
  Status st = ValidateBufferPool(pool);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("page table"), std::string::npos)
      << st.ToString();
}

TEST(BufferPoolValidatorTest, DetectsBrokenLruBackLink) {
  BufferPool pool(4);
  pool.Access(1);
  pool.Access(2);
  BufferPool::Corrupter::BreakLruBackLink(&pool);
  Status st = ValidateBufferPool(pool);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("back-link"), std::string::npos)
      << st.ToString();
}

// ------------------------------------------------- reopened-index validation

// A .stpqx round trip must restore trees the deep validators accept: MBR
// containment, augment bounds, leaf/record bijections — everything checked
// on a built index holds verbatim on the reopened image.
TEST(ReopenedIndexValidatorTest, DeepValidatorsAcceptReopenedIndexes) {
  SyntheticConfig cfg;
  cfg.seed = 21;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 16;
  for (FeatureIndexKind kind :
       {FeatureIndexKind::kSrt, FeatureIndexKind::kIr2}) {
    Dataset ds = GenerateSynthetic(cfg);
    EngineOptions opts;
    opts.index_kind = kind;
    opts.storage.page_size = 256;
    Engine built = Engine::Build(std::move(ds.objects),
                                 std::move(ds.feature_tables), opts)
                       .TakeValue();
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("stpq_invariants_" + std::to_string(::getpid()) + ".stpqx");
    ASSERT_TRUE(built.Save(path.string()).ok());
    Result<Engine> reopened = Engine::Open(path.string());
    std::filesystem::remove(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

    Status st = ValidateObjectIndex(reopened.value().object_index());
    EXPECT_TRUE(st.ok()) << st.ToString();
    for (size_t i = 0; i < reopened.value().num_feature_sets(); ++i) {
      const FeatureIndex& fi = reopened.value().feature_index(i);
      if (kind == FeatureIndexKind::kSrt) {
        const auto* srt = dynamic_cast<const SrtIndex*>(&fi);
        ASSERT_NE(srt, nullptr);
        st = ValidateSrtIndex(*srt);
      } else {
        const auto* ir2 = dynamic_cast<const Ir2Tree*>(&fi);
        ASSERT_NE(ir2, nullptr);
        st = ValidateIr2Tree(*ir2);
      }
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }
}

TEST(BufferPoolValidatorTest, DetectsAdmissionCounterRollback) {
  BufferPool pool(4);
  pool.Access(1);
  pool.Access(2);
  BufferPool::Corrupter::RewindAdmissions(&pool);
  Status st = ValidateBufferPool(pool);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("admissions"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace stpq
