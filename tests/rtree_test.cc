// Tests for rtree/: insertion, splits, bulk loading, traversal, invariants,
// augmentation maintenance, and I/O accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace stpq {
namespace {

using Tree2 = RTree<2>;

std::vector<Tree2::Entry> RandomPoints(Rng* rng, int n) {
  std::vector<Tree2::Entry> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    Point p{rng->Uniform(), rng->Uniform()};
    out.push_back({PointRect(p), static_cast<uint32_t>(i), {}});
  }
  return out;
}

std::set<uint32_t> BruteRange(const std::vector<Tree2::Entry>& pts,
                              const Rect2& range) {
  std::set<uint32_t> out;
  for (const auto& e : pts) {
    if (range.Intersects(e.rect)) out.insert(e.id);
  }
  return out;
}

std::set<uint32_t> TreeRange(const Tree2& tree, const Rect2& range) {
  std::set<uint32_t> out;
  tree.ForEachInRange(range,
                      [&](uint32_t id, const Rect2&, const NoAug&) {
                        out.insert(id);
                      });
  return out;
}

TEST(RTreeTest, EmptyTree) {
  Tree2 tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root_id(), kInvalidNodeId);
  EXPECT_EQ(TreeRange(tree, MakeRect2(0, 0, 1, 1)).size(), 0u);
}

TEST(RTreeTest, SingleInsert) {
  Tree2 tree;
  tree.Insert(PointRect({0.5, 0.5}), 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  auto hits = TreeRange(tree, MakeRect2(0.4, 0.4, 0.6, 0.6));
  EXPECT_EQ(hits, std::set<uint32_t>{42});
  EXPECT_TRUE(TreeRange(tree, MakeRect2(0.6, 0.6, 0.7, 0.7)).empty());
}

class RTreeInsertTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeInsertTest, InsertMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(n);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, n);
  RTreeOptions opts;
  opts.max_entries = 8;
  Tree2 tree(opts);
  for (const auto& e : pts) tree.Insert(e.rect, e.id);
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n));
  EXPECT_TRUE(tree.CheckInvariants(
      [](const NoAug&, const NoAug&) { return true; }));
  for (int q = 0; q < 25; ++q) {
    Rect2 range = MakeRect2(rng.Uniform(), rng.Uniform(), rng.Uniform(),
                            rng.Uniform());
    EXPECT_EQ(TreeRange(tree, range), BruteRange(pts, range));
  }
}

TEST_P(RTreeInsertTest, BulkLoadHilbertMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(n + 1);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, n);
  RTreeOptions opts;
  opts.max_entries = 8;
  Tree2 tree(opts);
  std::vector<Tree2::Entry> sorted = pts;
  SortByHilbertKey<2, NoAug>(&sorted, ComputeDomain<2, NoAug>(sorted), 16);
  tree.BulkLoadSorted(sorted);
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n));
  EXPECT_TRUE(tree.CheckInvariants(
      [](const NoAug&, const NoAug&) { return true; }));
  for (int q = 0; q < 25; ++q) {
    Rect2 range = MakeRect2(rng.Uniform(), rng.Uniform(), rng.Uniform(),
                            rng.Uniform());
    EXPECT_EQ(TreeRange(tree, range), BruteRange(pts, range));
  }
}

TEST_P(RTreeInsertTest, BulkLoadStrMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(n + 2);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, n);
  RTreeOptions opts;
  opts.max_entries = 8;
  Tree2 tree(opts);
  std::vector<Tree2::Entry> sorted = pts;
  SortSTR<2, NoAug>(&sorted, opts.max_entries);
  tree.BulkLoadSorted(sorted);
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(n));
  for (int q = 0; q < 25; ++q) {
    Rect2 range = MakeRect2(rng.Uniform(), rng.Uniform(), rng.Uniform(),
                            rng.Uniform());
    EXPECT_EQ(TreeRange(tree, range), BruteRange(pts, range));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeInsertTest,
                         ::testing::Values(1, 7, 8, 9, 64, 257, 1000, 4096),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTreeOptions opts;
  opts.max_entries = 16;
  Tree2 tree(opts);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(PointRect({rng.Uniform(), rng.Uniform()}), i);
  }
  // 5000 points with fan-out 16 and min fill ~6: height 3-5.
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 6u);
}

TEST(RTreeTest, BulkLoadPacksTighter) {
  Rng rng(10);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, 2000);
  RTreeOptions opts;
  opts.max_entries = 32;
  Tree2 inserted(opts), packed(opts);
  for (const auto& e : pts) inserted.Insert(e.rect, e.id);
  std::vector<Tree2::Entry> sorted = pts;
  SortByHilbertKey<2, NoAug>(&sorted, ComputeDomain<2, NoAug>(sorted), 16);
  packed.BulkLoadSorted(sorted);
  EXPECT_LT(packed.node_count(), inserted.node_count());
}

TEST(RTreeTest, BulkLoadFillFactor) {
  Rng rng(11);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, 1000);
  RTreeOptions opts;
  opts.max_entries = 20;
  Tree2 full(opts), seventy(opts);
  full.BulkLoadSorted(pts, 1.0);
  seventy.BulkLoadSorted(pts, 0.7);
  EXPECT_GT(seventy.node_count(), full.node_count());
}

TEST(RTreeTest, DuplicatePointsAllRetrievable) {
  RTreeOptions opts;
  opts.max_entries = 4;
  Tree2 tree(opts);
  for (uint32_t i = 0; i < 50; ++i) tree.Insert(PointRect({0.5, 0.5}), i);
  auto hits = TreeRange(tree, MakeRect2(0.5, 0.5, 0.5, 0.5));
  EXPECT_EQ(hits.size(), 50u);
}

TEST(RTreeTest, BufferPoolChargedPerNodeAccess) {
  BufferPool pool(0);
  RTreeOptions opts;
  opts.max_entries = 8;
  opts.buffer_pool = &pool;
  opts.page_base = 1000;
  Tree2 tree(opts);
  Rng rng(12);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, 500);
  tree.BulkLoadSorted(pts);
  pool.Clear();
  pool.ResetStats();
  TreeRange(tree, MakeRect2(0, 0, 1, 1));  // touches every node once
  EXPECT_EQ(pool.stats().reads, tree.node_count());
  EXPECT_EQ(pool.stats().hits, 0u);
  // A repeated scan with a warm unbounded pool is all hits.
  TreeRange(tree, MakeRect2(0, 0, 1, 1));
  EXPECT_EQ(pool.stats().reads, tree.node_count());
  EXPECT_EQ(pool.stats().hits, tree.node_count());
}

TEST(RTreeTest, SmallRangeTouchesFewPages) {
  BufferPool pool(0);
  RTreeOptions opts;
  opts.max_entries = 32;
  opts.buffer_pool = &pool;
  Tree2 tree(opts);
  Rng rng(13);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, 10000);
  SortByHilbertKey<2, NoAug>(&pts, ComputeDomain<2, NoAug>(pts), 16);
  tree.BulkLoadSorted(pts);
  pool.Clear();
  pool.ResetStats();
  TreeRange(tree, MakeRect2(0.5, 0.5, 0.51, 0.51));
  EXPECT_LT(pool.stats().reads, tree.node_count() / 10);
}

// Augmentation: max-value summaries must propagate through inserts/splits.
struct MaxAug {
  double value = 0.0;
  static MaxAug Merge(const MaxAug& a, const MaxAug& b) {
    return {std::max(a.value, b.value)};
  }
};

TEST(RTreeTest, AugmentationMaintainedUnderInsert) {
  RTreeOptions opts;
  opts.max_entries = 4;  // force many splits
  RTree<2, MaxAug> tree(opts);
  Rng rng(14);
  for (uint32_t i = 0; i < 300; ++i) {
    tree.Insert(PointRect({rng.Uniform(), rng.Uniform()}), i,
                MaxAug{rng.Uniform()});
  }
  EXPECT_TRUE(tree.CheckInvariants([](const MaxAug& a, const MaxAug& b) {
    return a.value == b.value;
  }));
}

TEST(RTreeTest, AugmentationMaintainedUnderBulkLoad) {
  RTreeOptions opts;
  opts.max_entries = 8;
  RTree<2, MaxAug> tree(opts);
  Rng rng(15);
  std::vector<RTree<2, MaxAug>::Entry> pts;
  for (uint32_t i = 0; i < 500; ++i) {
    pts.push_back({PointRect({rng.Uniform(), rng.Uniform()}), i,
                   MaxAug{rng.Uniform()}});
  }
  tree.BulkLoadSorted(pts);
  EXPECT_TRUE(tree.CheckInvariants([](const MaxAug& a, const MaxAug& b) {
    return a.value == b.value;
  }));
}

TEST(RTreeTest, FourDimensionalTree) {
  RTreeOptions opts;
  opts.max_entries = 8;
  RTree<4> tree(opts);
  Rng rng(16);
  std::vector<std::array<double, 4>> pts;
  for (uint32_t i = 0; i < 400; ++i) {
    std::array<double, 4> p{rng.Uniform(), rng.Uniform(), rng.Uniform(),
                            rng.Uniform()};
    pts.push_back(p);
    tree.Insert(Rect4::FromPoint(p), i);
  }
  Rect4 range{{0.2, 0.2, 0.2, 0.2}, {0.7, 0.7, 0.7, 0.7}};
  std::set<uint32_t> got;
  tree.ForEachInRange(range, [&](uint32_t id, const Rect4&, const NoAug&) {
    got.insert(id);
  });
  std::set<uint32_t> expect;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (range.Contains(pts[i])) expect.insert(i);
  }
  EXPECT_EQ(got, expect);
}

TEST(FanOutTest, DerivedFromPageSize) {
  // 2-D, no augmentation: entry = 36 bytes; (4096-16)/36 = 113.
  EXPECT_EQ(FanOutForPage(4096, 2, 0), 113u);
  // Larger aug shrinks fan-out; tiny pages floor at 4.
  EXPECT_LT(FanOutForPage(4096, 4, 40), FanOutForPage(4096, 2, 0));
  EXPECT_EQ(FanOutForPage(64, 4, 64), 4u);
}

TEST(BulkLoadTest, HilbertOrderingIsSpatiallyLocal) {
  // Consecutive records in Hilbert order should usually be close: the mean
  // hop distance must be far below the mean distance of a random pairing.
  Rng rng(18);
  std::vector<Tree2::Entry> pts = RandomPoints(&rng, 2000);
  std::vector<Tree2::Entry> sorted = pts;
  SortByHilbertKey<2, NoAug>(&sorted, ComputeDomain<2, NoAug>(sorted), 16);
  auto mean_hop = [](const std::vector<Tree2::Entry>& v) {
    double sum = 0;
    for (size_t i = 1; i < v.size(); ++i) {
      sum += Distance({v[i - 1].rect.lo[0], v[i - 1].rect.lo[1]},
                      {v[i].rect.lo[0], v[i].rect.lo[1]});
    }
    return sum / (v.size() - 1);
  };
  EXPECT_LT(mean_hop(sorted), 0.25 * mean_hop(pts));
}

}  // namespace
}  // namespace stpq
