// Memory-profile tests for Engine::Open and LoadIndexFile.
//
// Opening a .stpqx file must not materialize tree nodes up front: the
// loader parses the superblock + catalog, verifies segment checksums, and
// hands back lazy per-node decoders; nodes decode one at a time on first
// access.  These tests pin that laziness at the LoadIndexFile layer (build
//-mode independent) and at the Engine layer (NDEBUG only — Debug builds
// deep-validate restored indexes, which deliberately touches every node).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/synthetic.h"
#include "io/index_file.h"
#include "rtree/rtree.h"

namespace stpq {
namespace {

class OpenMemoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stpq_open_memory_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Saves an SRT index with enough nodes that "materialized everything"
  /// and "materialized one root-to-leaf path" are far apart.
  std::string SaveIndex() {
    SyntheticConfig cfg;
    cfg.seed = 7;
    cfg.num_objects = 2000;
    cfg.num_features_per_set = 2000;
    cfg.num_feature_sets = 2;
    cfg.vocabulary_size = 48;
    cfg.num_clusters = 32;
    Dataset ds = GenerateSynthetic(cfg);
    EngineOptions opts;
    opts.storage.page_size = 256;
    Engine engine =
        Engine::Build(ds.objects,
                      std::vector<FeatureTable>(ds.feature_tables), opts)
            .TakeValue();
    std::string path = (dir_ / "idx.stpqx").string();
    EXPECT_TRUE(engine.Save(path).ok());
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(OpenMemoryTest, LoadIndexFileReturnsLazyPayloads) {
  std::string path = SaveIndex();
  Result<LoadedIndex> loaded = LoadIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedIndex& idx = loaded.value();

  // The object tree came back as a decoder + node count, not nodes.
  EXPECT_TRUE(idx.object_tree.nodes.empty());
  EXPECT_GT(idx.object_tree.node_count, 0u);
  ASSERT_TRUE(static_cast<bool>(idx.object_tree.decoder));

  ASSERT_EQ(idx.srt_trees.size(), 2u);
  for (const RestoredTreeData<4, SrtAug>& t : idx.srt_trees) {
    EXPECT_TRUE(t.nodes.empty());
    EXPECT_GT(t.node_count, 0u);
    EXPECT_TRUE(static_cast<bool>(t.decoder));
  }
}

TEST_F(OpenMemoryTest, NodesMaterializeOnFirstAccessOnly) {
  std::string path = SaveIndex();
  Result<LoadedIndex> loaded = LoadIndexFile(path);
  ASSERT_TRUE(loaded.ok());

  RTree<2> tree;
  uint32_t total = loaded.value().object_tree.node_count;
  AdoptRestoredTree(&tree, std::move(loaded.value().object_tree));
  EXPECT_EQ(tree.materialized_node_count(), 0u);

  // A point probe walks one root-to-leaf path: a handful of nodes out of
  // hundreds.
  uint64_t hits = 0;
  tree.ForEachInRange(Rect<2>::FromPoint({0.5, 0.5}),
                      [&](uint32_t, const Rect<2>&, const NoAug&) { ++hits; });
  uint64_t after_probe = tree.materialized_node_count();
  EXPECT_GT(after_probe, 0u);
  EXPECT_LT(after_probe, total / 2) << "a point probe materialized half the tree";

  // Re-running the same probe decodes nothing new.
  tree.ForEachInRange(Rect<2>::FromPoint({0.5, 0.5}),
                      [&](uint32_t, const Rect<2>&, const NoAug&) {});
  EXPECT_EQ(tree.materialized_node_count(), after_probe);
}

TEST_F(OpenMemoryTest, DecodedNodesMatchEagerRestore) {
  // Decode every node through the lazy path and compare against the
  // in-memory build: same rects, record ids and tree shape.
  std::string path = SaveIndex();
  Result<LoadedIndex> loaded = LoadIndexFile(path);
  ASSERT_TRUE(loaded.ok());

  RTree<2> lazy;
  AdoptRestoredTree(&lazy, std::move(loaded.value().object_tree));
  std::vector<std::pair<uint32_t, Rect<2>>> via_lazy;
  lazy.ForEachInRange(Rect<2>{{0.0, 0.0}, {1.0, 1.0}},
                      [&](uint32_t id, const Rect<2>& r, const NoAug&) {
                        via_lazy.emplace_back(id, r);
                      });
  EXPECT_EQ(via_lazy.size(), lazy.size());
  EXPECT_EQ(lazy.materialized_node_count(), lazy.node_count());
}

#ifdef NDEBUG
TEST_F(OpenMemoryTest, EngineOpenDoesNotMaterializeNodesUpFront) {
  // Debug builds deep-validate restored indexes (touching every node), so
  // the up-front laziness claim only holds — and is only asserted — in
  // Release.
  std::string path = SaveIndex();
  Result<Engine> opened = Engine::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().object_index().tree().materialized_node_count(),
            0u);

  // One query touches a sliver of each tree, not the whole file.
  Query q;
  q.k = 5;
  q.radius = 0.05;
  q.lambda = 0.5;
  for (int s = 0; s < 2; ++s) {
    KeywordSet kw(48);
    kw.Insert(3);
    q.keywords.push_back(std::move(kw));
  }
  ASSERT_TRUE(opened.value().Execute(q, Algorithm::kStps).ok());
  const RTree<2>& object_tree = opened.value().object_index().tree();
  EXPECT_GT(object_tree.node_count(), 100u);
  EXPECT_LT(object_tree.materialized_node_count(),
            object_tree.node_count());
}
#endif  // NDEBUG

}  // namespace
}  // namespace stpq
