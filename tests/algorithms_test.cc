// End-to-end tests of the range-score query processing: STDS and STPS
// against brute force, both indexes, the batched STDS improvement, and the
// paper's worked example (Section 6.4).
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/compute_score.h"
#include "core/engine.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "paper_example.h"
#include "util/rng.h"

namespace stpq {
namespace {

namespace ex = testing_example;

std::vector<double> Scores(const std::vector<ResultEntry>& entries) {
  std::vector<double> out;
  out.reserve(entries.size());
  for (const ResultEntry& e : entries) out.push_back(e.score);
  return out;
}

void ExpectSameScores(const std::vector<ResultEntry>& got,
                      const std::vector<ResultEntry>& want,
                      const char* label) {
  std::vector<double> g = Scores(got), w = Scores(want);
  ASSERT_EQ(g.size(), w.size()) << label;
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g[i], w[i], 1e-9) << label << " rank " << i;
  }
}

std::vector<const FeatureTable*> TablePtrs(const Dataset& ds) {
  std::vector<const FeatureTable*> out;
  for (const FeatureTable& t : ds.feature_tables) out.push_back(&t);
  return out;
}

// ------------------------------------------------------- compute score

TEST(ComputeScoreTest, RangeMatchesBruteForce) {
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.num_features_per_set = 800;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 50;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  Query q;
  q.radius = 0.08;
  q.lambda = 0.5;
  q.keywords = {KeywordSet(32, {0, 1, 2})};
  QueryStats stats;
  TraversalScratch scratch;
  for (int i = 0; i < 60; ++i) {
    const Point& p = ds.objects[i].pos;
    double got = ComputeScoreRange(index, p, q.keywords[0], q.lambda,
                                   q.radius, stats, scratch);
    EXPECT_NEAR(got, brute.ComponentScore(p, 0, q), 1e-12) << "object " << i;
  }
}

TEST(ComputeScoreTest, BatchAgreesWithSingle) {
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.num_features_per_set = 500;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 40;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  KeywordSet query(32, {1, 2, 3});
  std::vector<BatchObject> batch;
  Rect2 mbr = Rect2::Empty();
  for (uint32_t i = 0; i < 200; ++i) {
    batch.push_back({i, ds.objects[i].pos});
    mbr.EnlargePoint({ds.objects[i].pos.x, ds.objects[i].pos.y});
  }
  std::vector<double> scores(batch.size());
  QueryStats stats;
  TraversalScratch scratch;
  ComputeScoresRangeBatch(index, batch, mbr, query, 0.5, 0.05, scores,
                          stats, scratch);
  for (size_t i = 0; i < batch.size(); ++i) {
    double single = ComputeScoreRange(index, batch[i].pos, query, 0.5, 0.05,
                                      stats, scratch);
    EXPECT_NEAR(scores[i], single, 1e-12) << "object " << i;
  }
}

TEST(ComputeScoreTest, ZeroRadiusOnlyColocated) {
  Dataset ds = ex::ExampleDataset();
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  KeywordSet query = ex::Terms(ds.vocabularies[0], {"pizza"});
  QueryStats stats;
  TraversalScratch scratch;
  // p exactly at Ontario's Pizza: radius 0 still matches it.
  double at =
      ComputeScoreRange(index, {7, 6}, query, 0.5, 0.0, stats, scratch);
  EXPECT_NEAR(at, 0.4 + 0.5 * 0.5, 1e-12);  // s = .5*.8 + .5*(1/2)
  double off =
      ComputeScoreRange(index, {7.1, 6}, query, 0.5, 0.0, stats, scratch);
  EXPECT_EQ(off, 0.0);
}

// ------------------------------------------------------------ paper example

class PaperExampleAlgorithms
    : public ::testing::TestWithParam<FeatureIndexKind> {};

TEST_P(PaperExampleAlgorithms, Top3AreTheThreeHotels) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  EngineOptions opts;
  opts.index_kind = GetParam();
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  for (Algorithm alg : {Algorithm::kStds, Algorithm::kStps}) {
    QueryResult r = engine.Execute(q, alg).TakeValue();
    ASSERT_EQ(r.entries.size(), 3u);
    std::set<ObjectId> ids;
    for (const ResultEntry& e : r.entries) {
      EXPECT_NEAR(e.score, ex::kTopHotelScore, 1e-9);
      ids.insert(e.object);
    }
    // p6, p9, p10 are ids 5, 8, 9.
    EXPECT_EQ(ids, (std::set<ObjectId>{5, 8, 9}));
  }
}

TEST_P(PaperExampleAlgorithms, FullRankingMatchesBruteForce) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 10);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  std::vector<ResultEntry> expected = brute.TopK(q);
  EngineOptions opts;
  opts.index_kind = GetParam();
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, expected, "STDS");
  ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "STPS");
}

INSTANTIATE_TEST_SUITE_P(Indexes, PaperExampleAlgorithms,
                         ::testing::Values(FeatureIndexKind::kSrt,
                                           FeatureIndexKind::kIr2),
                         [](const ::testing::TestParamInfo<FeatureIndexKind>&
                                param_info) {
                           return param_info.param == FeatureIndexKind::kSrt
                                      ? "SRT"
                                      : "IR2";
                         });

// -------------------------------------------------- randomized agreement

struct AgreementParam {
  FeatureIndexKind kind;
  uint32_t c;
  double radius;
  double lambda;
  uint32_t k;
};

class RangeAgreementTest : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(RangeAgreementTest, StdsStpsBruteForceAgree) {
  const AgreementParam& p = GetParam();
  SyntheticConfig cfg;
  cfg.seed = 1000 + p.c + p.k;
  cfg.num_objects = 400;
  cfg.num_features_per_set = 300;
  cfg.num_feature_sets = p.c;
  cfg.vocabulary_size = 24;
  cfg.num_clusters = 60;
  cfg.cluster_stddev = 0.02;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));

  QueryWorkloadConfig qcfg;
  qcfg.count = 5;
  qcfg.k = p.k;
  qcfg.radius = p.radius;
  qcfg.lambda = p.lambda;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);

  EngineOptions opts;
  opts.index_kind = p.kind;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), opts).TakeValue();
  for (const Query& q : queries) {
    std::vector<ResultEntry> expected = brute.TopK(q);
    ExpectSameScores(engine.Execute(q, Algorithm::kStds).TakeValue().entries, expected, "STDS");
    ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "STPS");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeAgreementTest,
    ::testing::Values(
        AgreementParam{FeatureIndexKind::kSrt, 1, 0.05, 0.5, 10},
        AgreementParam{FeatureIndexKind::kSrt, 2, 0.05, 0.5, 10},
        AgreementParam{FeatureIndexKind::kSrt, 3, 0.08, 0.5, 5},
        AgreementParam{FeatureIndexKind::kSrt, 2, 0.01, 0.5, 10},
        AgreementParam{FeatureIndexKind::kSrt, 2, 0.2, 0.5, 10},
        AgreementParam{FeatureIndexKind::kSrt, 2, 0.05, 0.0, 10},
        AgreementParam{FeatureIndexKind::kSrt, 2, 0.05, 1.0, 10},
        AgreementParam{FeatureIndexKind::kSrt, 2, 0.05, 0.9, 40},
        AgreementParam{FeatureIndexKind::kIr2, 2, 0.05, 0.5, 10},
        AgreementParam{FeatureIndexKind::kIr2, 3, 0.08, 0.3, 5},
        AgreementParam{FeatureIndexKind::kIr2, 1, 0.02, 0.7, 20}),
    [](const ::testing::TestParamInfo<AgreementParam>& param_info) {
      const AgreementParam& p = param_info.param;
      return std::string(p.kind == FeatureIndexKind::kSrt ? "srt" : "ir2") +
             "_c" + std::to_string(p.c) + "_k" + std::to_string(p.k) + "_i" +
             std::to_string(param_info.index);
    });

// ------------------------------------------------------------- edge cases

TEST(RangeEdgeCases, KLargerThanDataset) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 100);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  QueryResult stds = engine.Execute(q, Algorithm::kStds).TakeValue();
  QueryResult stps = engine.Execute(q, Algorithm::kStps).TakeValue();
  EXPECT_EQ(stds.entries.size(), 10u);  // all hotels
  EXPECT_EQ(stps.entries.size(), 10u);
  ExpectSameScores(stps.entries, stds.entries, "k>n");
}

TEST(RangeEdgeCases, NoRelevantFeaturesScoresZero) {
  Dataset ds = ex::ExampleDataset();
  Query q;
  q.k = 5;
  q.radius = 3.5;
  q.lambda = 0.5;
  // Keywords that no feature has: universe ids beyond any used... use terms
  // present in the vocab but disjoint per feature ("seafood" restaurants
  // exist, so pick an unused pair by constructing empty-intersection sets).
  q.keywords.push_back(KeywordSet(ds.feature_tables[0].universe_size()));
  q.keywords.push_back(KeywordSet(ds.feature_tables[1].universe_size()));
  // Empty keyword sets: sim = 0 everywhere, every tau_i = 0.
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  QueryResult stds = engine.Execute(q, Algorithm::kStds).TakeValue();
  QueryResult stps = engine.Execute(q, Algorithm::kStps).TakeValue();
  ASSERT_EQ(stds.entries.size(), 5u);
  ASSERT_EQ(stps.entries.size(), 5u);
  for (const auto& e : stds.entries) EXPECT_EQ(e.score, 0.0);
  for (const auto& e : stps.entries) EXPECT_EQ(e.score, 0.0);
}

TEST(RangeEdgeCases, TinyRadiusIsolatesColocated) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 10);
  q.radius = 0.1;  // no hotel within 0.1 of any restaurant
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  std::vector<ResultEntry> expected = brute.TopK(q);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  ExpectSameScores(engine.Execute(q, Algorithm::kStps).TakeValue().entries, expected, "tiny radius");
}

TEST(RangeEdgeCases, KZeroIsRejected) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 0);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  EXPECT_EQ(engine.Execute(q, Algorithm::kStds).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Execute(q, Algorithm::kStps).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RangeEdgeCases, EmptyObjectSet) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 5);
  Engine engine = Engine::Build({}, std::move(ds.feature_tables), {}).TakeValue();
  EXPECT_TRUE(engine.Execute(q, Algorithm::kStds).TakeValue().entries.empty());
  EXPECT_TRUE(engine.Execute(q, Algorithm::kStps).TakeValue().entries.empty());
}

TEST(RangeEdgeCases, StdsBatchingToggleAgrees) {
  SyntheticConfig cfg;
  cfg.num_objects = 300;
  cfg.num_features_per_set = 200;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 30;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions batched;
  batched.stds_batching = true;
  EngineOptions single;
  single.stds_batching = false;
  Engine e1 = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
            batched).TakeValue();
  Engine e2 = Engine::Build(ds.objects, std::move(ds.feature_tables), single).TakeValue();
  for (const Query& q : queries) {
    ExpectSameScores(e1.Execute(q, Algorithm::kStds).TakeValue().entries, e2.Execute(q, Algorithm::kStds).TakeValue().entries,
                     "batch toggle");
  }
}

// ------------------------------------------------------------- statistics

TEST(StatsTest, StpsReadsFewerPagesThanStds) {
  // STDS's cost grows with |O| (it scores data objects), while STPS's does
  // not; at paper-like object-to-feature ratios STPS reads far fewer pages.
  SyntheticConfig cfg;
  cfg.num_objects = 20000;
  cfg.num_features_per_set = 2000;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 200;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 5;
  qcfg.radius = 0.03;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  uint64_t stds_reads = 0, stps_reads = 0;
  for (const Query& q : queries) {
    stds_reads += engine.Execute(q, Algorithm::kStds).TakeValue().stats.TotalReads();
    stps_reads += engine.Execute(q, Algorithm::kStps).TakeValue().stats.TotalReads();
  }
  // The paper's headline: STPS is orders of magnitude cheaper than STDS.
  EXPECT_LT(stps_reads * 2, stds_reads);
}

TEST(StatsTest, ColdCachePerQueryIsDeterministic) {
  Dataset ds = ex::ExampleDataset();
  Query q = ex::TouristQuery(ds.vocabularies[0], ds.vocabularies[1], 3);
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  QueryResult a = engine.Execute(q, Algorithm::kStps).TakeValue();
  QueryResult b = engine.Execute(q, Algorithm::kStps).TakeValue();
  EXPECT_EQ(a.stats.TotalReads(), b.stats.TotalReads());
  EXPECT_GT(a.stats.TotalReads(), 0u);
}

TEST(StatsTest, WarmCacheReducesReads) {
  SyntheticConfig cfg;
  cfg.num_objects = 1000;
  cfg.num_features_per_set = 1000;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 100;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 4;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions warm;
  warm.cold_cache_per_query = false;
  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), warm).TakeValue();
  QueryResult first = engine.Execute(queries[0], Algorithm::kStps).TakeValue();
  QueryResult again = engine.Execute(queries[0], Algorithm::kStps).TakeValue();
  EXPECT_LT(again.stats.TotalReads(), first.stats.TotalReads());
  EXPECT_GT(again.stats.buffer_hits, 0u);
}

}  // namespace
}  // namespace stpq
