// Cross-cutting property tests of the paper's formal claims:
//   * Lemma 1: every object's score is the score of some valid combination;
//   * Definition 4 symmetry: combination validity is order-independent;
//   * s-hat(e) tightness statistics (SRT tighter than IR2);
//   * Voronoi cells of the relevant features partition the domain;
//   * batched STDS never reads more pages than per-object STDS.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/combination.h"
#include "core/engine.h"
#include "core/score.h"
#include "core/voronoi.h"
#include "gen/queries.h"
#include "gen/synthetic.h"
#include "index/ir2_tree.h"
#include "index/srt_index.h"
#include "util/rng.h"

namespace stpq {
namespace {

std::vector<const FeatureTable*> TablePtrs(const Dataset& ds) {
  std::vector<const FeatureTable*> out;
  for (const FeatureTable& t : ds.feature_tables) out.push_back(&t);
  return out;
}

TEST(Lemma1Test, EveryObjectScoreIsAValidCombinationScore) {
  // Lemma 1: for every p there is a valid combination C with tau(p) = s(C).
  SyntheticConfig cfg;
  cfg.num_objects = 120;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 25;
  cfg.cluster_stddev = 0.03;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.radius = 0.06;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  FeatureIndexOptions opts;
  SrtIndex i0(&ds.feature_tables[0], opts);
  SrtIndex i1(&ds.feature_tables[1], opts);
  for (const Query& q : queries) {
    // Enumerate every valid combination score.
    QueryStats stats;
    CombinationIterator it({&i0, &i1}, q, /*enforce_range_constraint=*/true,
                           PullingStrategy::kPrioritized, &stats);
    std::vector<double> combo_scores;
    while (auto c = it.Next()) combo_scores.push_back(c->score);
    for (const DataObject& p : ds.objects) {
      double tau = brute.Tau(p.pos, q);
      bool found = false;
      for (double s : combo_scores) {
        if (std::abs(s - tau) < 1e-9) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "tau(p)=" << tau
                         << " matches no valid combination score";
    }
  }
}

TEST(BoundTightnessTest, SrtBoundsTighterThanIr2OnAverage) {
  // The SRT-index's raison d'etre: its internal-entry bounds track the
  // best descendant score more closely than signature-based bounds.
  SyntheticConfig cfg;
  cfg.num_objects = 0;
  cfg.num_features_per_set = 4000;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 64;
  cfg.num_clusters = 150;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex srt(&ds.feature_tables[0], opts);
  Ir2Tree ir2(&ds.feature_tables[0], opts);
  KeywordSet query(64, {1, 2, 3});
  const double lambda = 0.5;

  // For each index: mean gap between an internal entry's bound and the
  // true best descendant score.
  auto mean_gap = [&](const FeatureIndex& index) {
    double gap_sum = 0;
    int entries = 0;
    std::vector<FeatureBranch> scratch, inner;
    std::vector<NodeId> stack{index.RootId()};
    while (!stack.empty()) {
      NodeId nid = stack.back();
      stack.pop_back();
      index.VisitChildren(nid, query, lambda, &scratch);
      std::vector<FeatureBranch> children = scratch;
      for (const FeatureBranch& b : children) {
        if (b.is_feature) continue;
        // True best descendant score below b.
        double best = 0;
        std::vector<NodeId> sub{b.id};
        while (!sub.empty()) {
          NodeId s = sub.back();
          sub.pop_back();
          index.VisitChildren(s, query, lambda, &inner);
          for (const FeatureBranch& ib : inner) {
            if (ib.is_feature) {
              best = std::max(best, ib.score_bound);
            } else {
              sub.push_back(ib.id);
            }
          }
        }
        EXPECT_GE(b.score_bound, best - 1e-9);  // validity
        gap_sum += b.score_bound - best;
        ++entries;
        stack.push_back(b.id);
      }
    }
    return gap_sum / std::max(entries, 1);
  };
  EXPECT_LT(mean_gap(srt), mean_gap(ir2));
}

TEST(VoronoiPartitionTest, RelevantCellsPartitionTheDomain) {
  // The Voronoi cells of all relevant features tile the domain: areas sum
  // to the domain area and every probe point lies in the cell of its
  // nearest relevant feature.
  SyntheticConfig cfg;
  cfg.num_objects = 0;
  cfg.num_features_per_set = 120;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 8;
  cfg.num_clusters = 30;
  Dataset ds = GenerateSynthetic(cfg);
  FeatureIndexOptions opts;
  SrtIndex index(&ds.feature_tables[0], opts);
  KeywordSet query(8, {0, 1, 2});
  Rect2 domain = MakeRect2(0, 0, 1, 1);
  QueryStats stats;
  TraversalScratch scratch;
  double total_area = 0;
  std::vector<ObjectId> relevant;
  for (const FeatureObject& t : ds.feature_tables[0].All()) {
    if (t.keywords.Intersects(query)) relevant.push_back(t.id);
  }
  ASSERT_GT(relevant.size(), 10u);
  for (ObjectId id : relevant) {
    ConvexPolygon cell =
        ComputeVoronoiCell(index, id, query, 0.5, domain, stats, scratch);
    total_area += cell.Area();
  }
  EXPECT_NEAR(total_area, 1.0, 1e-6);
}

TEST(StdsBatchingTest, BatchingReadsAtMostMarginallyMorePages) {
  // Batching shares one feature-index traversal across a leaf block, but
  // the per-object path sees a fresher pruning threshold between objects;
  // page counts may differ slightly in either direction.  The property:
  // batching never costs more than a small margin, and both are correct.
  SyntheticConfig cfg;
  cfg.num_objects = 3000;
  cfg.num_features_per_set = 1500;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 100;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 4;
  qcfg.radius = 0.03;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  EngineOptions batched;
  batched.stds_batching = true;
  EngineOptions single;
  single.stds_batching = false;
  Engine eb = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
            batched).TakeValue();
  Engine es = Engine::Build(ds.objects, std::move(ds.feature_tables), single).TakeValue();
  uint64_t batched_reads = 0, single_reads = 0;
  for (const Query& q : queries) {
    batched_reads += eb.Execute(q, Algorithm::kStds).TakeValue().stats.TotalReads();
    single_reads += es.Execute(q, Algorithm::kStds).TakeValue().stats.TotalReads();
  }
  EXPECT_LE(batched_reads, single_reads + single_reads / 10);
}

TEST(CombinationSymmetryTest, FeatureSetOrderDoesNotChangeScores) {
  // Swapping the feature sets (and the query keyword lists with them)
  // must produce the same score multiset.
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  cfg.num_clusters = 25;
  Dataset ds = GenerateSynthetic(cfg);
  QueryWorkloadConfig qcfg;
  qcfg.count = 3;
  qcfg.radius = 0.05;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);

  Dataset swapped;
  swapped.objects = ds.objects;
  swapped.feature_tables.push_back(ds.feature_tables[1]);
  swapped.feature_tables.push_back(ds.feature_tables[0]);
  Engine a = Engine::Build(ds.objects, std::move(ds.feature_tables), {}).TakeValue();
  Engine b = Engine::Build(swapped.objects, std::move(swapped.feature_tables), {}).TakeValue();
  for (Query q : queries) {
    QueryResult ra = a.Execute(q, Algorithm::kStps).TakeValue();
    std::swap(q.keywords[0], q.keywords[1]);
    QueryResult rb = b.Execute(q, Algorithm::kStps).TakeValue();
    ASSERT_EQ(ra.entries.size(), rb.entries.size());
    for (size_t i = 0; i < ra.entries.size(); ++i) {
      EXPECT_NEAR(ra.entries[i].score, rb.entries[i].score, 1e-9);
    }
  }
}

TEST(ScoreMonotonicityTest, LargerRadiusNeverLowersRangeScores) {
  // Definition 2 is monotone in r: enlarging the neighborhood can only
  // admit more features.
  SyntheticConfig cfg;
  cfg.num_objects = 100;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 16;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  QueryWorkloadConfig qcfg;
  qcfg.count = 2;
  std::vector<Query> queries = GenerateQueries(ds, qcfg);
  for (Query q : queries) {
    for (const DataObject& p : ds.objects) {
      q.radius = 0.02;
      double small = brute.Tau(p.pos, q);
      q.radius = 0.1;
      double large = brute.Tau(p.pos, q);
      EXPECT_GE(large, small - 1e-12);
    }
  }
}

TEST(ScoreMonotonicityTest, InfluenceUpperBoundsDecayedRange) {
  // For the same parameters, the influence score of p is at least the
  // range score times the worst-case decay 2^(-1) = 0.5 (features within
  // r decay by at most half).
  SyntheticConfig cfg;
  cfg.num_objects = 80;
  cfg.num_features_per_set = 120;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 8;
  Dataset ds = GenerateSynthetic(cfg);
  BruteForceEvaluator brute(&ds.objects, TablePtrs(ds));
  Query q;
  q.radius = 0.05;
  q.keywords = {KeywordSet(8, {0, 1})};
  for (const DataObject& p : ds.objects) {
    q.variant = ScoreVariant::kRange;
    double range = brute.Tau(p.pos, q);
    q.variant = ScoreVariant::kInfluence;
    double influence = brute.Tau(p.pos, q);
    EXPECT_GE(influence, 0.5 * range - 1e-12);
  }
}

}  // namespace
}  // namespace stpq
