// Tests for io/bulk_load: the external-memory Hilbert bulk loader.
//
// The central contract is byte-identity: BuildIndexFileExternal over a
// dataset must produce the exact bytes Engine::Build + Engine::Save does
// for the same parameters.  Everything else (golden I/O counts, query
// equivalence, crash safety) follows from that, but we pin the derived
// properties too so a regression points at the layer that broke.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/synthetic.h"
#include "io/bulk_load.h"
#include "io/dataset_io.h"
#include "io/index_file.h"
#include "util/rng.h"

namespace stpq {
namespace {

class BulkLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stpq_bulk_load_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  static Dataset SmallDataset() {
    SyntheticConfig cfg;
    cfg.seed = 7;
    cfg.num_objects = 400;
    cfg.num_features_per_set = 400;
    cfg.num_feature_sets = 2;
    cfg.vocabulary_size = 48;
    cfg.num_clusters = 32;
    return GenerateSynthetic(cfg);
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  /// Saves the in-memory build of `ds` and returns the output path.
  std::string SaveInMemory(const Dataset& ds, const IndexBuildParams& params,
                           const char* name) {
    EngineOptions opts;
    opts.index_kind = params.index_kind;
    opts.bulk_load = params.bulk_load;
    opts.storage.page_size = params.page_size_bytes;
    opts.fill = params.fill;
    opts.signature_bits = params.signature_bits;
    opts.signature_hashes = params.signature_hashes;
    Result<Engine> engine =
        Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                      opts);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    std::string path = Path(name);
    Status s = engine.value().Save(path, ds.vocabularies);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return path;
  }

  /// Writes `ds` as .stpq, bulk-loads it externally, and returns the
  /// stats; `*out_path` receives the index path.
  Result<ExternalBuildStats> BuildExternal(const Dataset& ds,
                                           const ExternalBuildOptions& opts,
                                           const char* name,
                                           std::string* out_path) {
    std::string data = Path("data.stpq");
    Status s = WriteDatasetBinary(data, ds);
    EXPECT_TRUE(s.ok()) << s.ToString();
    *out_path = Path(name);
    return BuildIndexFileExternal(data, *out_path, opts);
  }

  void ExpectByteIdentical(const Dataset& ds, const IndexBuildParams& params,
                           uint64_t memory_budget) {
    std::string mem = SaveInMemory(ds, params, "mem.stpqx");
    ExternalBuildOptions opts;
    opts.params = params;
    opts.memory_budget_bytes = memory_budget;
    std::string ext;
    Result<ExternalBuildStats> stats = BuildExternal(ds, opts, "ext.stpqx", &ext);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    std::string a = ReadAll(mem);
    std::string b = ReadAll(ext);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(a == b) << "external build bytes differ from Engine::Save";
    EXPECT_EQ(stats.value().objects, ds.objects.size());
    EXPECT_EQ(stats.value().tables, ds.feature_tables.size());
    EXPECT_EQ(stats.value().output_bytes, b.size());
  }

  std::filesystem::path dir_;
};

TEST_F(BulkLoadTest, ByteIdenticalSrt) {
  IndexBuildParams params;
  params.index_kind = FeatureIndexKind::kSrt;
  params.page_size_bytes = 256;  // small pages -> trees with real depth
  ExpectByteIdentical(SmallDataset(), params, uint64_t{64} << 20);
}

TEST_F(BulkLoadTest, ByteIdenticalIr2) {
  IndexBuildParams params;
  params.index_kind = FeatureIndexKind::kIr2;
  params.page_size_bytes = 256;
  ExpectByteIdentical(SmallDataset(), params, uint64_t{64} << 20);
}

TEST_F(BulkLoadTest, ByteIdenticalWithFillAndSignatureParams) {
  IndexBuildParams params;
  params.index_kind = FeatureIndexKind::kIr2;
  params.page_size_bytes = 512;
  params.fill = 0.7;
  params.signature_bits = 128;
  params.signature_hashes = 4;
  ExpectByteIdentical(SmallDataset(), params, uint64_t{64} << 20);
}

TEST_F(BulkLoadTest, TinyBudgetSpillsAndStaysIdentical) {
  // A 4 KiB budget cannot hold the sort buffer, so every tree spills runs
  // and the merge goes multi-pass — and the bytes still match.
  Dataset ds = SmallDataset();
  IndexBuildParams params;
  params.index_kind = FeatureIndexKind::kSrt;
  params.page_size_bytes = 256;
  std::string mem = SaveInMemory(ds, params, "mem.stpqx");
  ExternalBuildOptions opts;
  opts.params = params;
  opts.memory_budget_bytes = 4096;
  std::string ext;
  Result<ExternalBuildStats> stats = BuildExternal(ds, opts, "ext.stpqx", &ext);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().runs_written, 0u);
  EXPECT_GT(stats.value().merge_passes, 1u);
  EXPECT_GT(stats.value().spilled_bytes, 0u);
  EXPECT_TRUE(ReadAll(mem) == ReadAll(ext));
  // The run files were cleaned up.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "leftover temp file: " << entry.path();
  }
}

TEST_F(BulkLoadTest, TempDirRedirectsSpills) {
  Dataset ds = SmallDataset();
  std::filesystem::path spill_dir = dir_ / "spill";
  std::filesystem::create_directories(spill_dir);
  ExternalBuildOptions opts;
  opts.params.page_size_bytes = 256;
  opts.memory_budget_bytes = 4096;
  opts.temp_dir = spill_dir.string();
  std::string ext;
  Result<ExternalBuildStats> stats = BuildExternal(ds, opts, "ext.stpqx", &ext);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().runs_written, 0u);
  // Runs are transient; the redirected directory is empty again.
  EXPECT_TRUE(std::filesystem::is_empty(spill_dir));
}

TEST_F(BulkLoadTest, EmptyTablesRoundTrip) {
  // Zero objects and zero features per table: every tree is empty (invalid
  // root, height 0) and the external build must still match Engine::Save.
  Dataset ds;
  ds.feature_tables.emplace_back(std::vector<FeatureObject>{}, 8);
  ds.feature_tables.emplace_back(std::vector<FeatureObject>{}, 8);
  ds.vocabularies.resize(2);
  IndexBuildParams params;
  params.page_size_bytes = 256;
  ExpectByteIdentical(ds, params, uint64_t{1} << 20);
}

TEST_F(BulkLoadTest, OpenedExternalIndexMatchesInMemoryEngine) {
  // The file-backed engine over an externally built index answers queries
  // identically — entries and golden page-read counts — to the in-memory
  // engine it is byte-for-byte equivalent to.
  Dataset ds = SmallDataset();
  IndexBuildParams params;
  params.index_kind = FeatureIndexKind::kSrt;
  params.page_size_bytes = 256;
  EngineOptions eopts;
  eopts.index_kind = params.index_kind;
  eopts.storage.page_size = params.page_size_bytes;
  Result<Engine> built = Engine::Build(
      ds.objects, std::vector<FeatureTable>(ds.feature_tables), eopts);
  ASSERT_TRUE(built.ok());

  ExternalBuildOptions opts;
  opts.params = params;
  std::string ext;
  Result<ExternalBuildStats> stats = BuildExternal(ds, opts, "ext.stpqx", &ext);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  Result<Engine> reopened = Engine::Open(ext);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().page_store().backend(), StorageBackend::kFile);

  Rng rng(123);
  for (int i = 0; i < 12; ++i) {
    Query q;
    q.k = 5;
    q.radius = 0.05;
    q.lambda = 0.5;
    for (uint32_t s = 0; s < 2; ++s) {
      KeywordSet kw(48);
      kw.Insert(static_cast<TermId>(rng.UniformInt(0, 47)));
      kw.Insert(static_cast<TermId>(rng.UniformInt(0, 47)));
      q.keywords.push_back(std::move(kw));
    }
    q.variant = (i % 4 == 1)   ? ScoreVariant::kInfluence
                : (i % 4 == 3) ? ScoreVariant::kNearestNeighbor
                               : ScoreVariant::kRange;
    for (Algorithm algo : {Algorithm::kStds, Algorithm::kStps}) {
      Result<QueryResult> a = built.value().Execute(q, algo);
      Result<QueryResult> b = reopened.value().Execute(q, algo);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a.value().entries, b.value().entries);
      EXPECT_EQ(a.value().stats.object_index_reads,
                b.value().stats.object_index_reads);
      EXPECT_EQ(a.value().stats.feature_index_reads,
                b.value().stats.feature_index_reads);
    }
  }
}

TEST_F(BulkLoadTest, RejectsUnsupportedParameters) {
  Dataset ds = SmallDataset();
  std::string data = Path("data.stpq");
  ASSERT_TRUE(WriteDatasetBinary(data, ds).ok());

  {
    ExternalBuildOptions opts;
    opts.params.bulk_load = BulkLoadKind::kStr;
    Result<ExternalBuildStats> r =
        BuildIndexFileExternal(data, Path("x.stpqx"), opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ExternalBuildOptions opts;
    opts.params.page_size_bytes = 32;  // below the format minimum
    Result<ExternalBuildStats> r =
        BuildIndexFileExternal(data, Path("x.stpqx"), opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ExternalBuildOptions opts;
    opts.memory_budget_bytes = 1024;  // below the floor
    Result<ExternalBuildStats> r =
        BuildIndexFileExternal(data, Path("x.stpqx"), opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Result<ExternalBuildStats> r = BuildIndexFileExternal(
        Path("missing.stpq"), Path("x.stpqx"), ExternalBuildOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
}

TEST_F(BulkLoadTest, FailedBuildLeavesNoOutput) {
  Dataset ds = SmallDataset();
  std::string data = Path("data.stpq");
  ASSERT_TRUE(WriteDatasetBinary(data, ds).ok());
  // Truncating the dataset guarantees a typed failure; no output file —
  // final or temp — may remain behind.
  std::filesystem::resize_file(data, std::filesystem::file_size(data) / 2);
  std::string out = Path("out.stpqx");
  Result<ExternalBuildStats> r =
      BuildIndexFileExternal(data, out, ExternalBuildOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(std::filesystem::exists(out));
  EXPECT_FALSE(std::filesystem::exists(out + ".tmp"));
}

}  // namespace
}  // namespace stpq
