#!/usr/bin/env python3
"""End-to-end smoke check for the live introspection service.

Generates a small dataset, launches `stpq_cli workload --serve-admin 0`
(ephemeral port) with the sampler and slow-query log armed, scrapes every
admin endpoint over real HTTP while the process lingers — several of them
concurrently — and validates the payloads:

  * /healthz answers 200 with status "ok";
  * /statusz reports the engine rows and an armed sampler;
  * /metrics passes tools/check_prom_exposition.py;
  * /varz has closed intervals whose query counts sum to the workload's
    query count, and every active interval has p50 <= p99;
  * /slowz (threshold 0) retained queries;
  * an unknown endpoint answers 404.

With --out DIR every scraped payload is saved there (the CI admin-smoke
step uploads the directory as an artifact).

Exit code 0 = all checks passed.
"""

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "tools"))
import check_prom_exposition  # noqa: E402

LISTEN_RE = re.compile(r"admin: listening on 127\.0\.0\.1:(\d+)")
QUERIES = 200


def fetch(port, path):
    """Returns (status_code, body_text) for one GET."""
    url = "http://127.0.0.1:%d%s" % (port, path)
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode("utf-8", "replace")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", required=True, help="path to stpq_cli")
    parser.add_argument("--out", default="", help="save payloads here")
    args = parser.parse_args()

    failures = []

    def check(ok, message):
        print("%s %s" % ("ok  " if ok else "FAIL", message))
        if not ok:
            failures.append(message)

    with tempfile.TemporaryDirectory(prefix="stpq_admin_smoke.") as tmp:
        data = os.path.join(tmp, "smoke.stpq")
        subprocess.run(
            [args.cli, "generate", "--out", data, "--scale", "0.02",
             "--seed", "7"],
            check=True, stdout=subprocess.DEVNULL)

        proc = subprocess.Popen(
            [args.cli, "workload", "--data", data,
             "--queries", str(QUERIES), "--threads", "2",
             "--serve-admin", "0", "--metrics-interval", "50",
             "--slow-ms", "0", "--linger-ms", "15000"],
            stdout=subprocess.PIPE, text=True)
        try:
            port = None
            for line in proc.stdout:
                match = LISTEN_RE.search(line)
                if match:
                    port = int(match.group(1))
                    break
            check(port is not None, "server announced its port")
            if port is None:
                proc.kill()
                return 1

            # Wait for the run itself to finish (the linger line) so the
            # scraped state covers the whole workload.
            for line in proc.stdout:
                if "admin: lingering" in line:
                    break

            # A fast workload can finish before the sampler's first tick;
            # poll until an interval covering the queries has closed (the
            # sampler keeps ticking through the linger window).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status, body = fetch(port, "/varz")
                if status == 200:
                    varz = json.loads(body)
                    if sum(s.get("queries", 0)
                           for s in varz.get("samples", [])) >= QUERIES:
                        break
                time.sleep(0.1)

            # Concurrent scrapes: every endpoint in flight at once.
            paths = ["/healthz", "/statusz", "/metrics", "/varz",
                     "/slowz", "/tracez", "/", "/definitely-missing"]
            with concurrent.futures.ThreadPoolExecutor(len(paths)) as pool:
                results = dict(zip(
                    paths, pool.map(lambda p: fetch(port, p), paths)))

            if args.out:
                os.makedirs(args.out, exist_ok=True)
                for path, (_, body) in results.items():
                    name = path.strip("/").replace("/", "_") or "root"
                    with open(os.path.join(args.out, name + ".txt"), "w") as f:
                        f.write(body)

            status, body = results["/healthz"]
            health = json.loads(body)
            check(status == 200 and health.get("status") == "ok",
                  "/healthz is ok")

            status, body = results["/statusz"]
            statusz = json.loads(body)
            check(status == 200, "/statusz answers 200")
            check(statusz.get("sampler", {}).get("armed") is True,
                  "/statusz reports an armed sampler")
            check(statusz.get("status", {}).get("objects", "0") != "0",
                  "/statusz carries engine rows")

            status, body = results["/metrics"]
            check(status == 200, "/metrics answers 200")
            prom_errors = check_prom_exposition.validate(body)
            for error in prom_errors[:10]:
                print("     " + error)
            check(not prom_errors, "/metrics passes the exposition validator")
            check("stpq_admin_requests_total" in body,
                  "/metrics includes the server's own instruments")

            status, body = results["/varz"]
            varz = json.loads(body)
            check(status == 200 and varz.get("armed") is True,
                  "/varz sampler armed")
            samples = varz.get("samples", [])
            check(len(samples) > 0, "/varz has closed intervals")
            total_queries = sum(s.get("queries", 0) for s in samples)
            check(total_queries == QUERIES,
                  "/varz interval deltas sum to the workload size "
                  "(%d == %d)" % (total_queries, QUERIES))
            active = [s for s in samples if s.get("queries", 0) > 0]
            check(all(s["interval_p50_ms"] <= s["interval_p99_ms"] + 1e-9
                      for s in active),
                  "every active interval has p50 <= p99")
            check(any(s.get("qps", 0) > 0 for s in active),
                  "/varz reports a nonzero interval QPS")

            status, body = results["/slowz"]
            slowz = json.loads(body)
            check(status == 200 and slowz.get("armed") is True,
                  "/slowz armed")
            check(slowz.get("count", 0) > 0, "/slowz retained queries")

            check(results["/tracez"][0] == 200, "/tracez answers 200")
            check(results["/"][0] == 200, "/ lists the endpoints")
            check(results["/definitely-missing"][0] == 404,
                  "unknown endpoint answers 404")
        finally:
            try:
                proc.terminate()
                proc.wait(timeout=30)
            except Exception:
                proc.kill()

    print("%d checks failed" % len(failures) if failures
          else "all checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
