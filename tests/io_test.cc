// Tests for io/: CSV and binary dataset round trips plus error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/engine.h"
#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "io/dataset_io.h"
#include "io/index_file.h"
#include "util/rng.h"

namespace stpq {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stpq_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, ObjectsCsvRoundTrip) {
  std::vector<DataObject> objects = {
      {0, {0.25, 0.75}, "Grand Hotel"},
      {1, {0.5, 0.5}, "B&B"},
      {2, {1.0, 0.0}, ""},
  };
  ASSERT_TRUE(WriteObjectsCsv(Path("o.csv"), objects).ok());
  Result<std::vector<DataObject>> back = ReadObjectsCsv(Path("o.csv"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[0].pos, (Point{0.25, 0.75}));
  EXPECT_EQ(back.value()[0].name, "Grand Hotel");
  EXPECT_EQ(back.value()[2].name, "");
}

TEST_F(IoTest, ObjectsCsvSanitizesCommas) {
  std::vector<DataObject> objects = {{0, {0, 0}, "Hotel, with commas"}};
  ASSERT_TRUE(WriteObjectsCsv(Path("o.csv"), objects).ok());
  Result<std::vector<DataObject>> back = ReadObjectsCsv(Path("o.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0].name, "Hotel  with commas");
}

TEST_F(IoTest, ObjectsCsvErrors) {
  EXPECT_FALSE(ReadObjectsCsv(Path("missing.csv")).ok());
  {
    std::ofstream out(Path("bad.csv"));
    out << "id,x,y,name\n1,notanumber,2,x\n";
  }
  Result<std::vector<DataObject>> r = ReadObjectsCsv(Path("bad.csv"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(Path("short.csv"));
    out << "1,2\n";
  }
  EXPECT_FALSE(ReadObjectsCsv(Path("short.csv")).ok());
}

TEST_F(IoTest, FeaturesCsvRoundTrip) {
  Vocabulary vocab;
  TermId pizza = vocab.Intern("pizza");
  TermId sushi = vocab.Intern("sushi");
  std::vector<FeatureObject> features;
  features.push_back(
      {0, {0.1, 0.2}, 0.9, KeywordSet(2, {pizza, sushi}), "Both"});
  features.push_back({1, {0.3, 0.4}, 0.5, KeywordSet(2, {sushi}), "Sushi"});
  FeatureTable table(std::move(features), 2);
  ASSERT_TRUE(WriteFeaturesCsv(Path("f.csv"), table, vocab).ok());

  Vocabulary vocab2;
  Result<FeatureTable> back = ReadFeaturesCsv(Path("f.csv"), &vocab2);
  ASSERT_TRUE(back.ok());
  const FeatureTable& t = back.value();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.Get(0).score, 0.9);
  EXPECT_EQ(t.Get(0).keywords.Count(), 2u);
  EXPECT_EQ(t.Get(1).name, "Sushi");
  EXPECT_TRUE(vocab2.Lookup("pizza").ok());
}

TEST_F(IoTest, FeaturesCsvUniverseOverride) {
  Vocabulary vocab;
  std::vector<FeatureObject> features;
  features.push_back(
      {0, {0, 0}, 0.5, KeywordSet(1, {vocab.Intern("a")}), ""});
  FeatureTable table(std::move(features), 1);
  ASSERT_TRUE(WriteFeaturesCsv(Path("f.csv"), table, vocab).ok());
  Vocabulary vocab2;
  Result<FeatureTable> wide = ReadFeaturesCsv(Path("f.csv"), &vocab2, 64);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.value().universe_size(), 64u);
  // Universe smaller than the keyword count is rejected.
  Vocabulary vocab3;
  vocab3.Intern("x");
  vocab3.Intern("y");
  std::ofstream(Path("two.csv")) << "id,x,y,score,keywords\n"
                                 << "0,0,0,0.5,x|y|z\n";
  Result<FeatureTable> narrow = ReadFeaturesCsv(Path("two.csv"), &vocab3, 2);
  EXPECT_FALSE(narrow.ok());
}

TEST_F(IoTest, FeaturesCsvScoreRangeChecked) {
  std::ofstream(Path("f.csv")) << "id,x,y,score,keywords\n0,0,0,1.5,a\n";
  Vocabulary vocab;
  Result<FeatureTable> r = ReadFeaturesCsv(Path("f.csv"), &vocab);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(IoTest, BinaryRoundTripSynthetic) {
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 20;
  Dataset ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(WriteDatasetBinary(Path("d.stpq"), ds).ok());
  Result<Dataset> back = ReadDatasetBinary(Path("d.stpq"));
  ASSERT_TRUE(back.ok());
  const Dataset& b = back.value();
  ASSERT_EQ(b.objects.size(), ds.objects.size());
  ASSERT_EQ(b.feature_tables.size(), 2u);
  for (size_t i = 0; i < ds.objects.size(); ++i) {
    EXPECT_EQ(b.objects[i].pos, ds.objects[i].pos);
  }
  for (size_t s = 0; s < 2; ++s) {
    ASSERT_EQ(b.feature_tables[s].size(), ds.feature_tables[s].size());
    EXPECT_EQ(b.vocabularies[s].size(), ds.vocabularies[s].size());
    for (size_t i = 0; i < ds.feature_tables[s].size(); ++i) {
      const FeatureObject& x = ds.feature_tables[s].Get(i);
      const FeatureObject& y = b.feature_tables[s].Get(i);
      EXPECT_EQ(x.pos, y.pos);
      EXPECT_EQ(x.score, y.score);
      EXPECT_EQ(x.keywords, y.keywords);
    }
  }
}

TEST_F(IoTest, BinaryRoundTripRealLikePreservesNames) {
  RealLikeConfig cfg;
  cfg.scale = 0.01;
  Dataset ds = GenerateRealLike(cfg);
  ASSERT_TRUE(WriteDatasetBinary(Path("r.stpq"), ds).ok());
  Result<Dataset> back = ReadDatasetBinary(Path("r.stpq"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().objects[0].name, ds.objects[0].name);
  EXPECT_EQ(back.value().feature_tables[0].Get(0).name,
            ds.feature_tables[0].Get(0).name);
  EXPECT_EQ(back.value().vocabularies[0].Term(0), ds.vocabularies[0].Term(0));
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  std::ofstream(Path("junk.stpq"), std::ios::binary) << "not an stpq file";
  Result<Dataset> r = ReadDatasetBinary(Path("junk.stpq"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.num_features_per_set = 50;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 16;
  Dataset ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(WriteDatasetBinary(Path("full.stpq"), ds).ok());
  // Truncate the file in the middle.
  auto size = std::filesystem::file_size(Path("full.stpq"));
  std::filesystem::resize_file(Path("full.stpq"), size / 2);
  Result<Dataset> r = ReadDatasetBinary(Path("full.stpq"));
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, BinaryRejectsMissingVocabulary) {
  Dataset ds;
  ds.objects.push_back({0, {0, 0}, ""});
  ds.feature_tables.emplace_back(std::vector<FeatureObject>{}, 4);
  // No vocabulary for the table.
  Status s = WriteDatasetBinary(Path("x.stpq"), ds);
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// .stpqx index files: build -> Save -> Open round trips and typed corruption
// errors (DESIGN.md §16).  The round-trip contract is strict: a reopened
// engine must return identical result entries AND identical per-query
// page-read counters, because the restored trees are verbatim images of the
// built ones.
// ---------------------------------------------------------------------------

class IndexFileTest : public IoTest {
 protected:
  static Dataset SmallDataset() {
    SyntheticConfig cfg;
    cfg.seed = 7;
    cfg.num_objects = 400;
    cfg.num_features_per_set = 400;
    cfg.num_feature_sets = 2;
    cfg.vocabulary_size = 48;
    cfg.num_clusters = 32;
    return GenerateSynthetic(cfg);
  }

  static Engine BuildEngine(const Dataset& ds, FeatureIndexKind kind) {
    EngineOptions opts;
    opts.index_kind = kind;
    opts.storage.page_size = 256;  // small pages -> trees with real depth
    return Engine::Build(ds.objects,
                         std::vector<FeatureTable>(ds.feature_tables), opts)
        .TakeValue();
  }

  static std::vector<Query> SomeQueries(uint32_t vocab, uint32_t sets) {
    Rng rng(123);
    std::vector<Query> queries;
    for (int i = 0; i < 12; ++i) {
      Query q;
      q.k = 5;
      q.radius = 0.05;
      q.lambda = 0.5;
      for (uint32_t s = 0; s < sets; ++s) {
        KeywordSet kw(vocab);
        kw.Insert(static_cast<TermId>(rng.UniformInt(0, vocab - 1)));
        kw.Insert(static_cast<TermId>(rng.UniformInt(0, vocab - 1)));
        q.keywords.push_back(std::move(kw));
      }
      q.variant = (i % 4 == 1)   ? ScoreVariant::kInfluence
                  : (i % 4 == 3) ? ScoreVariant::kNearestNeighbor
                                 : ScoreVariant::kRange;
      queries.push_back(std::move(q));
    }
    return queries;
  }

  /// Saves a small valid SRT index to `name` and returns its path.
  std::string SaveSmallIndex(const char* name) {
    Dataset ds = SmallDataset();
    Engine engine = BuildEngine(ds, FeatureIndexKind::kSrt);
    std::string path = Path(name);
    EXPECT_TRUE(engine.Save(path).ok());
    return path;
  }

  void RoundTrip(FeatureIndexKind kind) {
    Dataset ds = SmallDataset();
    Engine built = BuildEngine(ds, kind);
    std::string path = Path("rt.stpqx");
    ASSERT_TRUE(built.Save(path).ok());

    Result<Engine> reopened = Engine::Open(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.value().page_store().backend(),
              StorageBackend::kFile);
    EXPECT_EQ(reopened.value().options().index_kind, kind);

    for (Algorithm algo : {Algorithm::kStds, Algorithm::kStps}) {
      for (const Query& q : SomeQueries(48, 2)) {
        Result<QueryResult> a = built.Execute(q, algo);
        Result<QueryResult> b = reopened.value().Execute(q, algo);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_EQ(a.value().entries, b.value().entries);
        // Golden I/O contract: identical page-read accounting per query.
        EXPECT_EQ(a.value().stats.object_index_reads,
                  b.value().stats.object_index_reads);
        EXPECT_EQ(a.value().stats.feature_index_reads,
                  b.value().stats.feature_index_reads);
        EXPECT_EQ(a.value().stats.buffer_hits, b.value().stats.buffer_hits);
      }
    }
    // The reopened engine really read pages from the file.
    EXPECT_GT(reopened.value().page_store().stats().fetches, 0u);
  }
};

TEST_F(IndexFileTest, RoundTripSrt) { RoundTrip(FeatureIndexKind::kSrt); }

TEST_F(IndexFileTest, RoundTripIr2) { RoundTrip(FeatureIndexKind::kIr2); }

TEST_F(IndexFileTest, VocabulariesRoundTrip) {
  Dataset ds = SmallDataset();
  Engine engine = BuildEngine(ds, FeatureIndexKind::kSrt);
  std::string path = Path("vocab.stpqx");
  ASSERT_TRUE(engine.Save(path, ds.vocabularies).ok());
  Result<std::vector<Vocabulary>> back = ReadIndexVocabularies(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), ds.vocabularies.size());
  for (size_t i = 0; i < back.value().size(); ++i) {
    ASSERT_EQ(back.value()[i].size(), ds.vocabularies[i].size());
    for (TermId t = 0; t < ds.vocabularies[i].size(); ++t) {
      EXPECT_EQ(back.value()[i].Term(t), ds.vocabularies[i].Term(t));
    }
  }
}

TEST_F(IndexFileTest, InfoReportsSuperblockAndCatalog) {
  std::string path = SaveSmallIndex("info.stpqx");
  Result<IndexFileInfo> info = ReadIndexFileInfo(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().params.index_kind, FeatureIndexKind::kSrt);
  EXPECT_EQ(info.value().table_count, 2u);
  // 3 fixed segments + 4 per table (vocab, table, tree meta, tree nodes).
  EXPECT_EQ(info.value().segments.size(), 3u + 4u * 2u);
}

TEST_F(IndexFileTest, RejectsBadMagic) {
  std::string path = Path("junk.stpqx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is definitely not a stpq index file, padded well past the "
           "superblock size so only the magic check can reject it";
  }
  Result<LoadedIndex> r = LoadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  Result<Engine> e = Engine::Open(path);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IndexFileTest, RejectsVersionMismatch) {
  std::string path = SaveSmallIndex("ver.stpqx");
  {
    // The version is the u32 at byte offset 4, right after the magic.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    char future = 99;
    f.write(&future, 1);
  }
  Result<LoadedIndex> r = LoadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST_F(IndexFileTest, RejectsTruncatedSuperblock) {
  std::string path = SaveSmallIndex("shortsb.stpqx");
  std::filesystem::resize_file(path, 20);
  Result<LoadedIndex> r = LoadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(IndexFileTest, RejectsTruncatedSegments) {
  std::string path = SaveSmallIndex("shortseg.stpqx");
  uint64_t size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 2 / 3);
  Result<LoadedIndex> r = LoadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(IndexFileTest, RejectsChecksumDamage) {
  std::string path = SaveSmallIndex("flip.stpqx");
  uint64_t size = std::filesystem::file_size(path);
  {
    // Flip one byte near the end of the file: inside the last node
    // segment's payload, far from the header, so only the segment
    // checksum can catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 100));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5c);
    f.seekp(static_cast<std::streamoff>(size - 100));
    f.write(&b, 1);
  }
  Result<LoadedIndex> r = LoadIndexFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  Result<Engine> e = Engine::Open(path);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kCorruption);
}

TEST_F(IndexFileTest, RejectsMissingFile) {
  Result<LoadedIndex> r = LoadIndexFile(Path("nope.stpqx"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace stpq
