// Tests for io/: CSV and binary dataset round trips plus error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/real_like.h"
#include "gen/synthetic.h"
#include "io/dataset_io.h"

namespace stpq {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("stpq_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, ObjectsCsvRoundTrip) {
  std::vector<DataObject> objects = {
      {0, {0.25, 0.75}, "Grand Hotel"},
      {1, {0.5, 0.5}, "B&B"},
      {2, {1.0, 0.0}, ""},
  };
  ASSERT_TRUE(WriteObjectsCsv(Path("o.csv"), objects).ok());
  Result<std::vector<DataObject>> back = ReadObjectsCsv(Path("o.csv"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[0].pos, (Point{0.25, 0.75}));
  EXPECT_EQ(back.value()[0].name, "Grand Hotel");
  EXPECT_EQ(back.value()[2].name, "");
}

TEST_F(IoTest, ObjectsCsvSanitizesCommas) {
  std::vector<DataObject> objects = {{0, {0, 0}, "Hotel, with commas"}};
  ASSERT_TRUE(WriteObjectsCsv(Path("o.csv"), objects).ok());
  Result<std::vector<DataObject>> back = ReadObjectsCsv(Path("o.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0].name, "Hotel  with commas");
}

TEST_F(IoTest, ObjectsCsvErrors) {
  EXPECT_FALSE(ReadObjectsCsv(Path("missing.csv")).ok());
  {
    std::ofstream out(Path("bad.csv"));
    out << "id,x,y,name\n1,notanumber,2,x\n";
  }
  Result<std::vector<DataObject>> r = ReadObjectsCsv(Path("bad.csv"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(Path("short.csv"));
    out << "1,2\n";
  }
  EXPECT_FALSE(ReadObjectsCsv(Path("short.csv")).ok());
}

TEST_F(IoTest, FeaturesCsvRoundTrip) {
  Vocabulary vocab;
  TermId pizza = vocab.Intern("pizza");
  TermId sushi = vocab.Intern("sushi");
  std::vector<FeatureObject> features;
  features.push_back(
      {0, {0.1, 0.2}, 0.9, KeywordSet(2, {pizza, sushi}), "Both"});
  features.push_back({1, {0.3, 0.4}, 0.5, KeywordSet(2, {sushi}), "Sushi"});
  FeatureTable table(std::move(features), 2);
  ASSERT_TRUE(WriteFeaturesCsv(Path("f.csv"), table, vocab).ok());

  Vocabulary vocab2;
  Result<FeatureTable> back = ReadFeaturesCsv(Path("f.csv"), &vocab2);
  ASSERT_TRUE(back.ok());
  const FeatureTable& t = back.value();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.Get(0).score, 0.9);
  EXPECT_EQ(t.Get(0).keywords.Count(), 2u);
  EXPECT_EQ(t.Get(1).name, "Sushi");
  EXPECT_TRUE(vocab2.Lookup("pizza").ok());
}

TEST_F(IoTest, FeaturesCsvUniverseOverride) {
  Vocabulary vocab;
  std::vector<FeatureObject> features;
  features.push_back(
      {0, {0, 0}, 0.5, KeywordSet(1, {vocab.Intern("a")}), ""});
  FeatureTable table(std::move(features), 1);
  ASSERT_TRUE(WriteFeaturesCsv(Path("f.csv"), table, vocab).ok());
  Vocabulary vocab2;
  Result<FeatureTable> wide = ReadFeaturesCsv(Path("f.csv"), &vocab2, 64);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide.value().universe_size(), 64u);
  // Universe smaller than the keyword count is rejected.
  Vocabulary vocab3;
  vocab3.Intern("x");
  vocab3.Intern("y");
  std::ofstream(Path("two.csv")) << "id,x,y,score,keywords\n"
                                 << "0,0,0,0.5,x|y|z\n";
  Result<FeatureTable> narrow = ReadFeaturesCsv(Path("two.csv"), &vocab3, 2);
  EXPECT_FALSE(narrow.ok());
}

TEST_F(IoTest, FeaturesCsvScoreRangeChecked) {
  std::ofstream(Path("f.csv")) << "id,x,y,score,keywords\n0,0,0,1.5,a\n";
  Vocabulary vocab;
  Result<FeatureTable> r = ReadFeaturesCsv(Path("f.csv"), &vocab);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(IoTest, BinaryRoundTripSynthetic) {
  SyntheticConfig cfg;
  cfg.num_objects = 200;
  cfg.num_features_per_set = 150;
  cfg.num_feature_sets = 2;
  cfg.vocabulary_size = 32;
  cfg.num_clusters = 20;
  Dataset ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(WriteDatasetBinary(Path("d.stpq"), ds).ok());
  Result<Dataset> back = ReadDatasetBinary(Path("d.stpq"));
  ASSERT_TRUE(back.ok());
  const Dataset& b = back.value();
  ASSERT_EQ(b.objects.size(), ds.objects.size());
  ASSERT_EQ(b.feature_tables.size(), 2u);
  for (size_t i = 0; i < ds.objects.size(); ++i) {
    EXPECT_EQ(b.objects[i].pos, ds.objects[i].pos);
  }
  for (size_t s = 0; s < 2; ++s) {
    ASSERT_EQ(b.feature_tables[s].size(), ds.feature_tables[s].size());
    EXPECT_EQ(b.vocabularies[s].size(), ds.vocabularies[s].size());
    for (size_t i = 0; i < ds.feature_tables[s].size(); ++i) {
      const FeatureObject& x = ds.feature_tables[s].Get(i);
      const FeatureObject& y = b.feature_tables[s].Get(i);
      EXPECT_EQ(x.pos, y.pos);
      EXPECT_EQ(x.score, y.score);
      EXPECT_EQ(x.keywords, y.keywords);
    }
  }
}

TEST_F(IoTest, BinaryRoundTripRealLikePreservesNames) {
  RealLikeConfig cfg;
  cfg.scale = 0.01;
  Dataset ds = GenerateRealLike(cfg);
  ASSERT_TRUE(WriteDatasetBinary(Path("r.stpq"), ds).ok());
  Result<Dataset> back = ReadDatasetBinary(Path("r.stpq"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().objects[0].name, ds.objects[0].name);
  EXPECT_EQ(back.value().feature_tables[0].Get(0).name,
            ds.feature_tables[0].Get(0).name);
  EXPECT_EQ(back.value().vocabularies[0].Term(0), ds.vocabularies[0].Term(0));
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  std::ofstream(Path("junk.stpq"), std::ios::binary) << "not an stpq file";
  Result<Dataset> r = ReadDatasetBinary(Path("junk.stpq"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  SyntheticConfig cfg;
  cfg.num_objects = 50;
  cfg.num_features_per_set = 50;
  cfg.num_feature_sets = 1;
  cfg.vocabulary_size = 16;
  Dataset ds = GenerateSynthetic(cfg);
  ASSERT_TRUE(WriteDatasetBinary(Path("full.stpq"), ds).ok());
  // Truncate the file in the middle.
  auto size = std::filesystem::file_size(Path("full.stpq"));
  std::filesystem::resize_file(Path("full.stpq"), size / 2);
  Result<Dataset> r = ReadDatasetBinary(Path("full.stpq"));
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, BinaryRejectsMissingVocabulary) {
  Dataset ds;
  ds.objects.push_back({0, {0, 0}, ""});
  ds.feature_tables.emplace_back(std::vector<FeatureObject>{}, 4);
  // No vocabulary for the table.
  Status s = WriteDatasetBinary(Path("x.stpq"), ds);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace stpq
