// Site selection: the nearest-neighbor score variant (Section 7.2).
//
// Scenario: an analyst ranks candidate store sites by the quality of the
// facilities that would actually serve each site — i.e. the *nearest*
// relevant supplier and the *nearest* relevant transit hub, not merely any
// good one within a radius.  Under the NN score a site inherits s(t) of
// its per-set nearest relevant feature, which STPS resolves through
// incremental Voronoi-cell intersection.
//
//   $ ./build/examples/site_selection [scale]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/score.h"
#include "gen/synthetic.h"

using namespace stpq;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  SyntheticConfig cfg;
  cfg.seed = 2026;
  cfg.num_objects = static_cast<uint32_t>(20'000 * scale);     // sites
  cfg.num_features_per_set = static_cast<uint32_t>(8'000 * scale);
  cfg.num_feature_sets = 2;  // suppliers, transit hubs
  cfg.vocabulary_size = 32;
  cfg.num_clusters = static_cast<uint32_t>(1'000 * scale) + 10;
  Dataset ds = GenerateSynthetic(cfg);
  std::printf("Ranking %zu candidate sites by their nearest qualified\n"
              "supplier (set 1) and nearest qualified transit hub (set 2)\n\n",
              ds.objects.size());

  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), EngineOptions{}).TakeValue();

  Query query;
  query.k = 5;
  query.radius = 0.01;  // scale parameter only; NN score has no cutoff
  query.lambda = 0.4;
  query.variant = ScoreVariant::kNearestNeighbor;
  query.keywords.push_back(KeywordSet(32, {0, 1, 2}));   // required services
  query.keywords.push_back(KeywordSet(32, {5, 6}));      // required lines

  QueryResult result = engine.Execute(query, Algorithm::kStps).TakeValue();
  std::printf("Top-%u sites (score = s(nearest supplier) + s(nearest hub)):\n",
              query.k);
  for (const ResultEntry& e : result.entries) {
    const DataObject& site = engine.objects()[e.object];
    std::printf("  site %-6u at (%.3f, %.3f)  tau = %.4f\n", e.object,
                site.pos.x, site.pos.y, e.score);
  }
  std::printf("\nCost profile (the paper's Figure 13/14 breakdown):\n"
              "  total CPU           %8.2f ms\n"
              "  Voronoi-cell CPU    %8.2f ms over %llu cells "
              "(%llu clip features)\n"
              "  page reads          %8llu (of which Voronoi %llu)\n"
              "  combinations        %8llu emitted\n",
              result.stats.cpu_ms, result.stats.voronoi_cpu_ms,
              static_cast<unsigned long long>(result.stats.voronoi_cells),
              static_cast<unsigned long long>(
                  result.stats.voronoi_clip_features),
              static_cast<unsigned long long>(result.stats.TotalReads()),
              static_cast<unsigned long long>(result.stats.voronoi_reads),
              static_cast<unsigned long long>(
                  result.stats.combinations_emitted));

  // Cross-check the top site against a direct scan.
  if (!result.entries.empty()) {
    const ResultEntry& top = result.entries.front();
    const Point p = engine.objects()[top.object].pos;
    double check = 0.0;
    for (size_t i = 0; i < engine.num_feature_sets(); ++i) {
      const FeatureTable& table = engine.feature_table(i);
      double best_d = 1e18, best_s = 0.0;
      for (const FeatureObject& t : table.All()) {
        if (!TextRelevant(t, query.keywords[i])) continue;
        double d = Distance(p, t.pos);
        if (d < best_d) {
          best_d = d;
          best_s = PreferenceScore(t, query.keywords[i], query.lambda);
        }
      }
      check += best_s;
    }
    std::printf("\nDirect-scan check of the top site: tau = %.4f (%s)\n",
                check,
                std::abs(check - top.score) < 1e-9 ? "matches" : "MISMATCH");
  }
  return 0;
}
