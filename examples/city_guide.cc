// City guide: range-score STPQ over the real-like dataset.
//
// The scenario from the paper's introduction at realistic scale: rank
// hotels by the best Italian-pizza restaurant and the best espresso cafe
// within walking distance.  Also demonstrates how the same query behaves
// under both feature indexes (SRT vs IR2) and prints the per-query cost
// breakdown the paper reports.
//
//   $ ./build/examples/city_guide [scale]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "core/score.h"
#include "gen/real_like.h"

using namespace stpq;

namespace {

KeywordSet Terms(const Vocabulary& v,
                 std::initializer_list<const char*> words) {
  KeywordSet s(v.size());
  for (const char* w : words) s.Insert(v.Lookup(w).value());
  return s;
}

/// Finds the best feature within `r` of `p` (to explain a result row).
const FeatureObject* BestNearby(const FeatureTable& table,
                                const KeywordSet& kw, double lambda,
                                const Point& p, double r) {
  const FeatureObject* best = nullptr;
  double best_score = -1.0;
  for (const FeatureObject& t : table.All()) {
    if (!TextRelevant(t, kw) || Distance(p, t.pos) > r) continue;
    double s = PreferenceScore(t, kw, lambda);
    if (s > best_score) {
      best_score = s;
      best = &t;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  RealLikeConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  std::printf("Generating the real-like dataset (scale %.2f)...\n",
              cfg.scale);
  Dataset ds = GenerateRealLike(cfg);
  std::printf("  %zu hotels, %zu restaurants, %zu cafes\n\n",
              ds.objects.size(), ds.feature_tables[0].size(),
              ds.feature_tables[1].size());

  Query query;
  query.k = 5;
  query.radius = 0.01;  // "walking distance" in the normalized space
  query.lambda = 0.5;
  query.keywords.push_back(Terms(ds.vocabularies[0], {"italian", "pizza"}));
  query.keywords.push_back(
      Terms(ds.vocabularies[1], {"espresso", "muffins"}));

  for (FeatureIndexKind kind :
       {FeatureIndexKind::kSrt, FeatureIndexKind::kIr2}) {
    EngineOptions opts;
    opts.index_kind = kind;
    Engine engine = Engine::Build(ds.objects, std::vector<FeatureTable>(ds.feature_tables),
                  opts).TakeValue();
    QueryResult result = engine.Execute(query, Algorithm::kStps).TakeValue();
    std::printf("=== %s index ===\n", engine.IndexName());
    for (const ResultEntry& e : result.entries) {
      const DataObject& hotel = engine.objects()[e.object];
      std::printf("  %-14s tau = %.4f", hotel.name.c_str(), e.score);
      const FeatureObject* r = BestNearby(ds.feature_tables[0],
                                          query.keywords[0], query.lambda,
                                          hotel.pos, query.radius);
      const FeatureObject* c = BestNearby(ds.feature_tables[1],
                                          query.keywords[1], query.lambda,
                                          hotel.pos, query.radius);
      if (r != nullptr) std::printf("  [%s]", r->name.c_str());
      if (c != nullptr) std::printf("  [%s]", c->name.c_str());
      std::printf("\n");
    }
    std::printf("  cost: %.2f ms CPU, %llu page reads "
                "(%llu feature-index, %llu object-index)\n\n",
                result.stats.cpu_ms,
                static_cast<unsigned long long>(result.stats.TotalReads()),
                static_cast<unsigned long long>(
                    result.stats.feature_index_reads),
                static_cast<unsigned long long>(
                    result.stats.object_index_reads));
  }
  return 0;
}
