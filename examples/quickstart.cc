// Quickstart: the paper's running example, end to end.
//
// Builds the hotels/restaurants/coffeehouses of Figures 2-4, asks the
// Section-3 tourist query — "hotels that have nearby a highly rated Italian
// restaurant that serves pizza and a good coffeehouse with espresso and
// muffins" — and prints the top hotels with both algorithms.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"

using namespace stpq;

namespace {

KeywordSet Terms(const Vocabulary& v,
                 std::initializer_list<const char*> words) {
  KeywordSet s(v.size());
  for (const char* w : words) s.Insert(v.Lookup(w).value());
  return s;
}

}  // namespace

int main() {
  // ---- 1. Vocabularies (one keyword universe per feature set).
  Vocabulary cuisine;
  for (const char* t : {"chinese", "asian", "greek", "mediterranean",
                        "italian", "spanish", "european", "buffet", "pizza",
                        "sandwiches", "subs", "seafood", "american", "coffee",
                        "tea", "bistro"}) {
    cuisine.Intern(t);
  }
  Vocabulary menu;
  for (const char* t : {"cake", "bread", "pastries", "cappuccino", "toast",
                        "decaf", "donuts", "iced-coffee", "tea", "muffins",
                        "croissants", "espresso", "macchiato"}) {
    menu.Intern(t);
  }

  // ---- 2. Feature set 1: restaurants (location, rating, keywords).
  std::vector<FeatureObject> restaurants;
  auto add_r = [&](const char* name, double rating, double x, double y,
                   std::initializer_list<const char*> words) {
    restaurants.push_back(
        FeatureObject{0, {x, y}, rating, Terms(cuisine, words), name});
  };
  add_r("Beijing Restaurant", 0.6, 1, 2, {"chinese", "asian"});
  add_r("Daphne's Restaurant", 0.5, 4, 1, {"greek", "mediterranean"});
  add_r("Espanol Restaurant", 0.8, 5, 8, {"italian", "spanish", "european"});
  add_r("Golden Wok", 0.8, 2, 3, {"chinese", "buffet"});
  add_r("John's Pizza Plaza", 0.9, 8, 4, {"pizza", "sandwiches", "subs"});
  add_r("Ontario's Pizza", 0.8, 7, 6, {"pizza", "italian"});
  add_r("Oyster House", 0.8, 6, 10, {"seafood", "mediterranean"});
  add_r("Small Bistro", 1.0, 3, 7, {"american", "coffee", "tea", "bistro"});

  // ---- 3. Feature set 2: coffeehouses.
  std::vector<FeatureObject> cafes;
  auto add_c = [&](const char* name, double rating, double x, double y,
                   std::initializer_list<const char*> words) {
    cafes.push_back(FeatureObject{0, {x, y}, rating, Terms(menu, words),
                                  name});
  };
  add_c("Bakery & Cafe", 0.6, 4, 1, {"cake", "bread", "pastries"});
  add_c("Coffee House", 0.5, 4, 7, {"cappuccino", "toast", "decaf"});
  add_c("Coffe Time", 0.8, 3, 10, {"cake", "toast", "donuts"});
  add_c("Cafe Ole", 0.6, 6, 2, {"cappuccino", "iced-coffee", "tea"});
  add_c("Royal Coffe Shop", 0.9, 5, 5, {"muffins", "croissants", "espresso"});
  add_c("Mocha Coffe House", 1.0, 10, 3, {"macchiato", "espresso", "decaf"});
  add_c("The Terrace", 0.7, 6, 9, {"muffins", "pastries", "espresso"});
  add_c("Espresso Bar", 0.4, 7, 6, {"croissants", "decaf", "tea"});

  // ---- 4. Data objects: the hotels being ranked.
  std::vector<DataObject> hotels;
  const double pos[10][2] = {{1, 2},   {0, 9},     {10, 0}, {2, 9},
                             {0, 5},   {6, 5.5},   {10, 10}, {9, 9},
                             {6.5, 5}, {5.5, 6}};
  for (int i = 0; i < 10; ++i) {
    hotels.push_back(DataObject{0, {pos[i][0], pos[i][1]},
                                "Hotel p" + std::to_string(i + 1)});
  }

  // ---- 5. Build the engine (SRT-index by default).
  std::vector<FeatureTable> tables;
  tables.emplace_back(std::move(restaurants), cuisine.size());
  tables.emplace_back(std::move(cafes), menu.size());
  Engine engine = Engine::Build(std::move(hotels), std::move(tables), EngineOptions{}).TakeValue();

  // ---- 6. The tourist query.
  Query query;
  query.k = 3;
  query.radius = 3.5;
  query.lambda = 0.5;
  query.keywords.push_back(Terms(cuisine, {"italian", "pizza"}));
  query.keywords.push_back(Terms(menu, {"espresso", "muffins"}));

  std::printf("Top-%u hotels with a good Italian pizza place AND a good\n"
              "espresso-and-muffins coffeehouse within distance %.1f:\n\n",
              query.k, query.radius);
  for (Algorithm alg : {Algorithm::kStps, Algorithm::kStds}) {
    QueryResult result = engine.Execute(query, alg).TakeValue();
    std::printf("%s:\n", alg == Algorithm::kStps ? "STPS" : "STDS");
    for (const ResultEntry& e : result.entries) {
      std::printf("  %-10s  tau = %.5f\n",
                  engine.objects()[e.object].name.c_str(), e.score);
    }
    std::printf("  (%.2f ms CPU, %llu simulated page reads)\n\n",
                result.stats.cpu_ms,
                static_cast<unsigned long long>(result.stats.TotalReads()));
  }
  std::printf("The paper's expected answer: p6, p9, p10 with tau = 1.68333\n"
              "(s(Ontario's Pizza) = 0.9 + s(Royal Coffe Shop) = 0.78333).\n");
  return 0;
}
