// Explainable search: the extended API in one tour.
//
//   1. Generate a dataset and persist it to the binary .stpq format.
//   2. Reload it (the round trip is what a downstream app would do).
//   3. Stream results incrementally with StpsCursor — no k fixed up front,
//      stop on a quality threshold instead.
//   4. Explain every returned hotel: which restaurant and which cafe give
//      it its score, at what distance.
//
//   $ ./build/examples/explainable_search [scale]
#include <cstdio>
#include <cstdlib>

#include "core/cursor.h"
#include "core/engine.h"
#include "core/explain.h"
#include "gen/real_like.h"
#include "io/dataset_io.h"

using namespace stpq;

namespace {

KeywordSet Terms(const Vocabulary& v,
                 std::initializer_list<const char*> words) {
  KeywordSet s(v.size());
  for (const char* w : words) s.Insert(v.Lookup(w).value());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  RealLikeConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  Dataset ds = GenerateRealLike(cfg);

  // Persist and reload — the binary format carries objects, feature
  // tables and vocabularies.
  const char* path = "/tmp/stpq_example_dataset.stpq";
  Status st = WriteDatasetBinary(path, ds);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<Dataset> loaded = ReadDatasetBinary(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Dataset data = loaded.TakeValue();
  std::printf("Round-tripped %zu hotels + %zu restaurants + %zu cafes "
              "through %s\n\n",
              data.objects.size(), data.feature_tables[0].size(),
              data.feature_tables[1].size(), path);

  Query query;
  query.radius = 0.012;
  query.lambda = 0.5;
  query.keywords.push_back(
      Terms(data.vocabularies[0], {"mexican", "tacos"}));
  query.keywords.push_back(Terms(data.vocabularies[1], {"smoothies"}));

  Engine engine = Engine::Build(data.objects, std::move(data.feature_tables),
                EngineOptions{}).TakeValue();

  // Stream until quality drops below 80% of the best hit (a posteriori k).
  std::unique_ptr<StpsCursor> cursor = engine.OpenCursor(query).TakeValue();
  std::printf("Hotels ranked until the score drops below 80%% of the "
              "leader:\n");
  double leader = -1.0;
  int rank = 0;
  while (auto entry = cursor->Next()) {
    if (leader < 0) leader = entry->score;
    if (entry->score < 0.8 * leader || rank >= 25) break;
    ++rank;
    Explanation why = ExplainScore(&engine, query, entry->object);
    std::printf("#%2d %-12s tau = %.4f\n", rank,
                engine.objects()[entry->object].name.c_str(), entry->score);
    const char* set_names[] = {"restaurant", "cafe"};
    for (const Contribution& c : why.contributions) {
      if (!c.has_feature) {
        std::printf("      %-10s (nothing relevant within r)\n",
                    set_names[c.feature_set]);
        continue;
      }
      const FeatureObject& f =
          engine.feature_table(c.feature_set).Get(c.feature);
      std::printf("      %-10s %-16s s=%.3f at distance %.4f\n",
                  set_names[c.feature_set], f.name.c_str(), c.score,
                  c.distance);
    }
  }
  std::printf("\nCursor cost so far: %llu page reads, "
              "%llu combinations emitted\n",
              static_cast<unsigned long long>(
                  cursor->stats().TotalReads()),
              static_cast<unsigned long long>(
                  cursor->stats().combinations_emitted));
  std::remove(path);
  return 0;
}
