// Trip planner: comparing the range and influence score variants.
//
// The range score imposes a hard cutoff at distance r; the influence score
// (Definition 6) decays smoothly with 2^(-dist/r), so a superb restaurant
// slightly beyond r still counts.  This example runs the same query under
// both variants and shows where the rankings diverge.
//
//   $ ./build/examples/trip_planner [scale]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/engine.h"
#include "gen/real_like.h"

using namespace stpq;

namespace {

KeywordSet Terms(const Vocabulary& v,
                 std::initializer_list<const char*> words) {
  KeywordSet s(v.size());
  for (const char* w : words) s.Insert(v.Lookup(w).value());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  RealLikeConfig cfg;
  cfg.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  Dataset ds = GenerateRealLike(cfg);
  std::printf("Trip planner over %zu hotels / %zu restaurants / %zu cafes\n",
              ds.objects.size(), ds.feature_tables[0].size(),
              ds.feature_tables[1].size());

  Engine engine = Engine::Build(ds.objects, std::move(ds.feature_tables), EngineOptions{}).TakeValue();

  Query query;
  query.k = 8;
  query.radius = 0.008;
  query.lambda = 0.6;  // lean toward textual match over raw rating
  query.keywords.push_back(Terms(ds.vocabularies[0], {"sushi", "japanese"}));
  query.keywords.push_back(Terms(ds.vocabularies[1], {"latte", "cake"}));

  std::map<ObjectId, std::pair<int, int>> rank;  // id -> (range, influence)

  query.variant = ScoreVariant::kRange;
  QueryResult range = engine.Execute(query, Algorithm::kStps).TakeValue();
  std::printf("\nRange score (hard cutoff r = %.3f):\n", query.radius);
  for (size_t i = 0; i < range.entries.size(); ++i) {
    const ResultEntry& e = range.entries[i];
    std::printf("  #%zu %-14s tau = %.4f\n", i + 1,
                engine.objects()[e.object].name.c_str(), e.score);
    rank[e.object].first = static_cast<int>(i) + 1;
  }
  std::printf("  cost: %.2f ms CPU, %llu page reads\n", range.stats.cpu_ms,
              static_cast<unsigned long long>(range.stats.TotalReads()));

  query.variant = ScoreVariant::kInfluence;
  QueryResult infl = engine.Execute(query, Algorithm::kStps).TakeValue();
  std::printf("\nInfluence score (smooth decay, half-life r):\n");
  for (size_t i = 0; i < infl.entries.size(); ++i) {
    const ResultEntry& e = infl.entries[i];
    std::printf("  #%zu %-14s tau = %.4f\n", i + 1,
                engine.objects()[e.object].name.c_str(), e.score);
    rank[e.object].second = static_cast<int>(i) + 1;
  }
  std::printf("  cost: %.2f ms CPU, %llu page reads\n", infl.stats.cpu_ms,
              static_cast<unsigned long long>(infl.stats.TotalReads()));

  std::printf("\nRank movement (0 = not in that top-%u):\n", query.k);
  for (const auto& [id, ranks] : rank) {
    std::printf("  %-14s range #%d -> influence #%d\n",
                engine.objects()[id].name.c_str(), ranks.first,
                ranks.second);
  }
  return 0;
}
